package qbism

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"qbism/internal/faultsim"
	"qbism/internal/netsim"
	"qbism/internal/rencode"
)

// chaosBaseConfig is a small, fast system for chaos runs. Checksums are
// on so silent device corruption is detectable end to end.
func chaosBaseConfig() Config {
	return Config{
		Bits:         4,
		NumPET:       2,
		NumMRI:       1,
		Seed:         11,
		Method:       rencode.Naive,
		SmallStudies: true,
		StoreRaw:     true,
		Checksums:    true,
	}
}

// chaosLinkPolicy and chaosDevicePolicy keep the per-decision fault rate
// at or below 10% combined while exercising every fault kind, including
// the silent ones (Tamper, PageCorrupt) that only the integrity layer
// can catch.
func chaosLinkPolicy(seed uint64) *faultsim.Policy {
	return &faultsim.Policy{
		Seed: seed, DropProb: 0.02, TimeoutProb: 0.02, LatencyProb: 0.02,
		CorruptProb: 0.015, TamperProb: 0.015, ExtraLatency: 5e6, // 5ms
	}
}

func chaosDevicePolicy(seed uint64) *faultsim.Policy {
	// Device decisions happen per page touched; at Bits:4 a query only
	// touches a couple of pages, so 2%+2% keeps the per-query device
	// fault rate in the same ballpark as the link's.
	return &faultsim.Policy{Seed: seed, ReadErrProb: 0.02, PageCorruptProb: 0.02}
}

// chaosSpecPool returns the query mix: full studies, boxes, structures,
// stored bands, and mixed band+structure queries across all studies.
func chaosSpecPool(s *System) []QuerySpec {
	var pool []QuerySpec
	box := [6]uint32{2, 2, 2, 11, 11, 11}
	for _, st := range s.Studies {
		id := st.StudyID
		pool = append(pool,
			QuerySpec{StudyID: id, Atlas: "Talairach", FullStudy: true},
			QuerySpec{StudyID: id, Atlas: "Talairach", Box: &box},
			QuerySpec{StudyID: id, Atlas: "Talairach", Structure: "ntal"},
			QuerySpec{StudyID: id, Atlas: "Talairach", Structure: "putamen"},
		)
		for _, b := range s.BandRegions[id] {
			pool = append(pool, QuerySpec{StudyID: id, Atlas: "Talairach", HasBand: true, BandLo: int(b.Lo), BandHi: int(b.Hi)})
			pool = append(pool, QuerySpec{StudyID: id, Atlas: "Talairach", HasBand: true, BandLo: int(b.Lo), BandHi: int(b.Hi), Structure: "ntal"})
			if len(pool) > 40 {
				break
			}
		}
	}
	return pool
}

// marshalResult canonicalizes a query result for byte comparison.
func marshalResult(t *testing.T, s *System, res *QueryResult) []byte {
	t.Helper()
	blob, err := MarshalDataRegion(res.Data, s.Cfg.Method)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestChaosQueries is the headline robustness check: several hundred
// queries against a system with faults injected on both the link and the
// device. Every query must either return bytes identical to the
// fault-free run or fail with a typed, classified error — never panic,
// never silently return corrupted data — and with retries enabled the
// success rate must stay at or above 95%.
func TestChaosQueries(t *testing.T) {
	clean, err := New(chaosBaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	pool := chaosSpecPool(clean)
	want := make(map[string][]byte)
	for _, spec := range pool {
		res, err := clean.RunQuery(spec)
		if err != nil {
			t.Fatalf("fault-free baseline failed for %s: %v", spec.Label(), err)
		}
		want[spec.Key()] = marshalResult(t, clean, res)
	}
	if len(pool) < 12 {
		t.Fatalf("spec pool too small: %d", len(pool))
	}

	cfg := chaosBaseConfig()
	cfg.LinkFaults = chaosLinkPolicy(101)
	cfg.DeviceFaults = chaosDevicePolicy(202)
	cfg.Retry = DefaultRetryPolicy()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const queries = 300
	pick := faultsim.NewRand(999)
	succeeded, retried := 0, 0
	for i := 0; i < queries; i++ {
		spec := pool[pick.Intn(len(pool))]
		res, err := sys.RunQuery(spec)
		if err != nil {
			if !RetryableError(err) {
				t.Fatalf("query %d (%s): fatal-classified error escaped: %v", i, spec.Label(), err)
			}
			continue
		}
		succeeded++
		retried += res.Retry.Retries
		if got := marshalResult(t, sys, res); !bytes.Equal(got, want[spec.Key()]) {
			t.Fatalf("query %d (%s): silent corruption — result differs from fault-free run (degraded=%v)",
				i, spec.Label(), res.Meta.Degraded)
		}
		if res.Retry.Retries > 0 && res.Timing.RetrySim == 0 {
			t.Errorf("query %d: %d retries but no simulated backoff", i, res.Retry.Retries)
		}
	}
	if rate := float64(succeeded) / queries; rate < 0.95 {
		t.Errorf("success rate %.3f < 0.95 (%d/%d)", rate, succeeded, queries)
	}
	if retried == 0 {
		t.Error("no retries happened — fault injection appears inert")
	}

	ls := sys.Link.Stats()
	if ls.Drops+ls.Timeouts+ls.Corruptions+ls.Tampers == 0 {
		t.Errorf("no link faults fired: %+v", ls)
	}
	if int(ls.Retries) != retried {
		t.Errorf("link retries %d != summed query retries %d", ls.Retries, retried)
	}
	if sys.DeviceFaults.Count(faultsim.ReadErr)+sys.DeviceFaults.Count(faultsim.PageCorrupt) == 0 {
		t.Error("no device faults fired")
	}
	t.Logf("chaos: %d/%d ok, %d retries, link faults %d/%d/%d/%d, device faults %v",
		succeeded, queries, retried, ls.Drops, ls.Timeouts, ls.Corruptions, ls.Tampers,
		sys.DeviceFaults.Counts())
}

// TestChaosDeterminism runs the same chaos workload twice on identically
// configured systems: stats, fault counters, and every per-query outcome
// must match exactly.
func TestChaosDeterminism(t *testing.T) {
	type outcome struct {
		OK      bool
		Retries int
		Blob    string
	}
	run := func() ([]outcome, map[faultsim.Kind]uint64, map[faultsim.Kind]uint64) {
		cfg := chaosBaseConfig()
		cfg.LinkFaults = chaosLinkPolicy(7)
		cfg.DeviceFaults = chaosDevicePolicy(8)
		cfg.Retry = DefaultRetryPolicy()
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pool := chaosSpecPool(sys)
		pick := faultsim.NewRand(55)
		var outs []outcome
		for i := 0; i < 120; i++ {
			spec := pool[pick.Intn(len(pool))]
			res, err := sys.RunQuery(spec)
			o := outcome{OK: err == nil}
			if err == nil {
				o.Retries = res.Retry.Retries
				o.Blob = string(marshalResult(t, sys, res))
			}
			outs = append(outs, o)
		}
		return outs, sys.LinkFaults.Counts(), sys.DeviceFaults.Counts()
	}
	o1, l1, d1 := run()
	o2, l2, d2 := run()
	if !reflect.DeepEqual(o1, o2) {
		t.Error("per-query outcomes diverged between identical runs")
	}
	if !reflect.DeepEqual(l1, l2) || !reflect.DeepEqual(d1, d2) {
		t.Errorf("fault counters diverged: link %v vs %v, device %v vs %v", l1, l2, d1, d2)
	}
}

// TestDegradedBandRecompute corrupts a stored intensityBand REGION at
// rest and checks the server degrades to recomputing the band from the
// VOLUME: the query succeeds, is marked Degraded with a warning, and the
// voxel bytes are identical to the healthy fast path.
func TestDegradedBandRecompute(t *testing.T) {
	sys, err := New(chaosBaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	study := sys.Studies[0].StudyID
	bands := sys.BandRegions[study]
	if len(bands) == 0 {
		t.Fatal("study has no stored bands")
	}
	b := bands[len(bands)/2]
	spec := QuerySpec{StudyID: study, Atlas: "Talairach", HasBand: true, BandLo: int(b.Lo), BandHi: int(b.Hi)}

	healthy, err := sys.RunQuery(spec)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Meta.Degraded {
		t.Fatalf("healthy run already degraded: %s", healthy.Meta.Warning)
	}

	// Flip one stored bit of the band's REGION long field, behind the
	// checksum table (simulated bit rot).
	res, err := sys.DB.Exec(fmt.Sprintf(
		"select ib.region from intensityBand ib where ib.studyId = %d and ib.lo = %d and ib.hi = %d and ib.encoding = '%s'",
		study, b.Lo, b.Hi, EncHilbertNaive))
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("band row lookup: %d rows, %v", len(res.Rows), err)
	}
	h := res.Rows[0][0].L
	if err := sys.LFM.Corrupt(h, 3, 0x40); err != nil {
		t.Fatal(err)
	}

	degraded, err := sys.RunQuery(spec)
	if err != nil {
		t.Fatalf("corrupted band did not degrade, it failed: %v", err)
	}
	if !degraded.Meta.Degraded || degraded.Meta.Warning == "" {
		t.Errorf("not marked degraded: %+v", degraded.Meta)
	}
	t.Log(degraded.Meta.Warning)
	hb := marshalResult(t, sys, healthy)
	db := marshalResult(t, sys, degraded)
	if !bytes.Equal(hb, db) {
		t.Error("degraded result differs from fast path")
	}
	if sys.LFM.Stats().ChecksumFailures == 0 {
		t.Error("checksum failure not counted")
	}
	// The slow path costs a full VOLUME read, so it must touch at least
	// as many pages as the fast path did.
	if degraded.Timing.LFMPages < healthy.Timing.LFMPages {
		t.Errorf("slow path pages %d < fast path %d", degraded.Timing.LFMPages, healthy.Timing.LFMPages)
	}

	// Mixed band+structure queries take the same fallback.
	mixed := spec
	mixed.Structure = "ntal"
	mres, err := sys.RunQuery(mixed)
	if err != nil {
		t.Fatalf("mixed degraded query failed: %v", err)
	}
	if !mres.Meta.Degraded {
		t.Error("mixed query not marked degraded")
	}
}

// TestRetryExhaustionIsTyped drives the link at a 100% drop rate: every
// query must fail after exactly MaxAttempts tries with a typed,
// retryable error — proof the client never spins forever and never
// converts exhaustion into an untyped failure.
func TestRetryExhaustionIsTyped(t *testing.T) {
	cfg := chaosBaseConfig()
	cfg.LinkFaults = &faultsim.Policy{DropProb: 1.0}
	cfg.Retry = RetryPolicy{MaxAttempts: 3}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{StudyID: sys.Studies[0].StudyID, Atlas: "Talairach", FullStudy: true}
	_, qerr := sys.RunQuery(spec)
	if qerr == nil {
		t.Fatal("query succeeded across a dead link")
	}
	if !errors.Is(qerr, netsim.ErrDropped) {
		t.Errorf("not a drop error: %v", qerr)
	}
	if !RetryableError(qerr) {
		t.Errorf("exhaustion error lost its retryable classification: %v", qerr)
	}
	if got := sys.Link.Stats().Retries; got != 2 {
		t.Errorf("retries = %d, want 2 (3 attempts)", got)
	}
}
