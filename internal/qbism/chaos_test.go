package qbism

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"time"

	"qbism/internal/cluster"
	"qbism/internal/faultsim"
	"qbism/internal/netsim"
	"qbism/internal/rencode"
)

// chaosBaseConfig is a small, fast system for chaos runs. Checksums are
// on so silent device corruption is detectable end to end.
func chaosBaseConfig() Config {
	return Config{
		Bits:         4,
		NumPET:       2,
		NumMRI:       1,
		Seed:         11,
		Method:       rencode.Naive,
		SmallStudies: true,
		StoreRaw:     true,
		Checksums:    true,
	}
}

// chaosLinkPolicy and chaosDevicePolicy keep the per-decision fault rate
// at or below 10% combined while exercising every fault kind, including
// the silent ones (Tamper, PageCorrupt) that only the integrity layer
// can catch.
func chaosLinkPolicy(seed uint64) *faultsim.Policy {
	return &faultsim.Policy{
		Seed: seed, DropProb: 0.02, TimeoutProb: 0.02, LatencyProb: 0.02,
		CorruptProb: 0.015, TamperProb: 0.015, ExtraLatency: 5e6, // 5ms
	}
}

func chaosDevicePolicy(seed uint64) *faultsim.Policy {
	// Device decisions happen per page touched; at Bits:4 a query only
	// touches a couple of pages, so 2%+2% keeps the per-query device
	// fault rate in the same ballpark as the link's.
	return &faultsim.Policy{Seed: seed, ReadErrProb: 0.02, PageCorruptProb: 0.02}
}

// chaosSpecPool returns the query mix: full studies, boxes, structures,
// stored bands, and mixed band+structure queries across all studies.
func chaosSpecPool(s *System) []QuerySpec {
	var pool []QuerySpec
	box := [6]uint32{2, 2, 2, 11, 11, 11}
	for _, st := range s.Studies {
		id := st.StudyID
		pool = append(pool,
			QuerySpec{StudyID: id, Atlas: "Talairach", FullStudy: true},
			QuerySpec{StudyID: id, Atlas: "Talairach", Box: &box},
			QuerySpec{StudyID: id, Atlas: "Talairach", Structure: "ntal"},
			QuerySpec{StudyID: id, Atlas: "Talairach", Structure: "putamen"},
		)
		for _, b := range s.BandRegions[id] {
			pool = append(pool, QuerySpec{StudyID: id, Atlas: "Talairach", HasBand: true, BandLo: int(b.Lo), BandHi: int(b.Hi)})
			pool = append(pool, QuerySpec{StudyID: id, Atlas: "Talairach", HasBand: true, BandLo: int(b.Lo), BandHi: int(b.Hi), Structure: "ntal"})
			if len(pool) > 40 {
				break
			}
		}
	}
	return pool
}

// marshalResult canonicalizes a query result for byte comparison.
func marshalResult(t *testing.T, s *System, res *QueryResult) []byte {
	t.Helper()
	blob, err := MarshalDataRegion(res.Data, s.Cfg.Method)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestChaosQueries is the headline robustness check: several hundred
// queries against a system with faults injected on both the link and the
// device. Every query must either return bytes identical to the
// fault-free run or fail with a typed, classified error — never panic,
// never silently return corrupted data — and with retries enabled the
// success rate must stay at or above 95%.
func TestChaosQueries(t *testing.T) {
	clean, err := New(chaosBaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	pool := chaosSpecPool(clean)
	want := make(map[string][]byte)
	for _, spec := range pool {
		res, err := clean.RunQuery(spec)
		if err != nil {
			t.Fatalf("fault-free baseline failed for %s: %v", spec.Label(), err)
		}
		want[spec.Key()] = marshalResult(t, clean, res)
	}
	if len(pool) < 12 {
		t.Fatalf("spec pool too small: %d", len(pool))
	}

	cfg := chaosBaseConfig()
	cfg.LinkFaults = chaosLinkPolicy(101)
	cfg.DeviceFaults = chaosDevicePolicy(202)
	cfg.Retry = DefaultRetryPolicy()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const queries = 300
	pick := faultsim.NewRand(999)
	succeeded, retried := 0, 0
	for i := 0; i < queries; i++ {
		spec := pool[pick.Intn(len(pool))]
		res, err := sys.RunQuery(spec)
		if err != nil {
			if !RetryableError(err) {
				t.Fatalf("query %d (%s): fatal-classified error escaped: %v", i, spec.Label(), err)
			}
			continue
		}
		succeeded++
		retried += res.Retry.Retries
		if got := marshalResult(t, sys, res); !bytes.Equal(got, want[spec.Key()]) {
			t.Fatalf("query %d (%s): silent corruption — result differs from fault-free run (degraded=%v)",
				i, spec.Label(), res.Meta.Degraded)
		}
		if res.Retry.Retries > 0 && res.Timing.RetrySim == 0 {
			t.Errorf("query %d: %d retries but no simulated backoff", i, res.Retry.Retries)
		}
	}
	if rate := float64(succeeded) / queries; rate < 0.95 {
		t.Errorf("success rate %.3f < 0.95 (%d/%d)", rate, succeeded, queries)
	}
	if retried == 0 {
		t.Error("no retries happened — fault injection appears inert")
	}

	ls := sys.Link.Stats()
	if ls.Drops+ls.Timeouts+ls.Corruptions+ls.Tampers == 0 {
		t.Errorf("no link faults fired: %+v", ls)
	}
	if int(ls.Retries) != retried {
		t.Errorf("link retries %d != summed query retries %d", ls.Retries, retried)
	}
	if sys.DeviceFaults.Count(faultsim.ReadErr)+sys.DeviceFaults.Count(faultsim.PageCorrupt) == 0 {
		t.Error("no device faults fired")
	}
	t.Logf("chaos: %d/%d ok, %d retries, link faults %d/%d/%d/%d, device faults %v",
		succeeded, queries, retried, ls.Drops, ls.Timeouts, ls.Corruptions, ls.Tampers,
		sys.DeviceFaults.Counts())
}

// TestChaosDeterminism runs the same chaos workload twice on identically
// configured systems: stats, fault counters, and every per-query outcome
// must match exactly.
func TestChaosDeterminism(t *testing.T) {
	type outcome struct {
		OK      bool
		Retries int
		Blob    string
	}
	run := func() ([]outcome, map[faultsim.Kind]uint64, map[faultsim.Kind]uint64) {
		cfg := chaosBaseConfig()
		cfg.LinkFaults = chaosLinkPolicy(7)
		cfg.DeviceFaults = chaosDevicePolicy(8)
		cfg.Retry = DefaultRetryPolicy()
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pool := chaosSpecPool(sys)
		pick := faultsim.NewRand(55)
		var outs []outcome
		for i := 0; i < 120; i++ {
			spec := pool[pick.Intn(len(pool))]
			res, err := sys.RunQuery(spec)
			o := outcome{OK: err == nil}
			if err == nil {
				o.Retries = res.Retry.Retries
				o.Blob = string(marshalResult(t, sys, res))
			}
			outs = append(outs, o)
		}
		return outs, sys.LinkFaults.Counts(), sys.DeviceFaults.Counts()
	}
	o1, l1, d1 := run()
	o2, l2, d2 := run()
	if !reflect.DeepEqual(o1, o2) {
		t.Error("per-query outcomes diverged between identical runs")
	}
	if !reflect.DeepEqual(l1, l2) || !reflect.DeepEqual(d1, d2) {
		t.Errorf("fault counters diverged: link %v vs %v, device %v vs %v", l1, l2, d1, d2)
	}
}

// TestDegradedBandRecompute corrupts a stored intensityBand REGION at
// rest and checks the server degrades to recomputing the band from the
// VOLUME: the query succeeds, is marked Degraded with a warning, and the
// voxel bytes are identical to the healthy fast path.
func TestDegradedBandRecompute(t *testing.T) {
	sys, err := New(chaosBaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	study := sys.Studies[0].StudyID
	bands := sys.BandRegions[study]
	if len(bands) == 0 {
		t.Fatal("study has no stored bands")
	}
	b := bands[len(bands)/2]
	spec := QuerySpec{StudyID: study, Atlas: "Talairach", HasBand: true, BandLo: int(b.Lo), BandHi: int(b.Hi)}

	healthy, err := sys.RunQuery(spec)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Meta.Degraded {
		t.Fatalf("healthy run already degraded: %s", healthy.Meta.Warning)
	}

	// Flip one stored bit of the band's REGION long field, behind the
	// checksum table (simulated bit rot). The corrupted row must be the
	// one the default encoding resolves to — the planner's pick.
	res, err := sys.DB.Exec(fmt.Sprintf(
		"select ib.region from intensityBand ib where ib.studyId = %d and ib.lo = %d and ib.hi = %d and ib.encoding = '%s'",
		study, b.Lo, b.Hi, sys.bandEncoding(study, int(b.Lo), int(b.Hi))))
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("band row lookup: %d rows, %v", len(res.Rows), err)
	}
	h := res.Rows[0][0].L
	if err := sys.LFM.Corrupt(h, 3, 0x40); err != nil {
		t.Fatal(err)
	}

	degraded, err := sys.RunQuery(spec)
	if err != nil {
		t.Fatalf("corrupted band did not degrade, it failed: %v", err)
	}
	if !degraded.Meta.Degraded || degraded.Meta.Warning == "" {
		t.Errorf("not marked degraded: %+v", degraded.Meta)
	}
	t.Log(degraded.Meta.Warning)
	hb := marshalResult(t, sys, healthy)
	db := marshalResult(t, sys, degraded)
	if !bytes.Equal(hb, db) {
		t.Error("degraded result differs from fast path")
	}
	if sys.LFM.Stats().ChecksumFailures == 0 {
		t.Error("checksum failure not counted")
	}
	// The slow path costs a full VOLUME read, so it must touch at least
	// as many pages as the fast path did.
	if degraded.Timing.LFMPages < healthy.Timing.LFMPages {
		t.Errorf("slow path pages %d < fast path %d", degraded.Timing.LFMPages, healthy.Timing.LFMPages)
	}

	// Mixed band+structure queries take the same fallback.
	mixed := spec
	mixed.Structure = "ntal"
	mres, err := sys.RunQuery(mixed)
	if err != nil {
		t.Fatalf("mixed degraded query failed: %v", err)
	}
	if !mres.Meta.Degraded {
		t.Error("mixed query not marked degraded")
	}
}

// TestRetryExhaustionIsTyped drives the link at a 100% drop rate: every
// query must fail after exactly MaxAttempts tries with a typed,
// retryable error — proof the client never spins forever and never
// converts exhaustion into an untyped failure.
func TestRetryExhaustionIsTyped(t *testing.T) {
	cfg := chaosBaseConfig()
	cfg.LinkFaults = &faultsim.Policy{DropProb: 1.0}
	cfg.Retry = RetryPolicy{MaxAttempts: 3}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{StudyID: sys.Studies[0].StudyID, Atlas: "Talairach", FullStudy: true}
	_, qerr := sys.RunQuery(spec)
	if qerr == nil {
		t.Fatal("query succeeded across a dead link")
	}
	if !errors.Is(qerr, netsim.ErrDropped) {
		t.Errorf("not a drop error: %v", qerr)
	}
	if !RetryableError(qerr) {
		t.Errorf("exhaustion error lost its retryable classification: %v", qerr)
	}
	if got := sys.Link.Stats().Retries; got != 2 {
		t.Errorf("retries = %d, want 2 (3 attempts)", got)
	}
}

// ---------------------------------------------------------------------------
// Degraded-shard suite: the cluster under slow, dead, corrupt, and
// flapping nodes. Every test asserts the graceful-degradation contract:
// a query either returns bytes identical to an unsharded fault-free
// control system (replica failover) or fails with a typed error that a
// scatter-gather folds into a PartialResult naming the lost shard —
// never a silent wrong answer.

// clusterChaosConfig is a small 2-shard, primary+replica cluster over
// the chaos corpus. DeviceBytes is explicit: lfm.New allocates the full
// device upfront, and the per-node default includes production slack.
func clusterChaosConfig() ClusterConfig {
	base := chaosBaseConfig()
	base.DeviceBytes = 8 << 20
	return ClusterConfig{
		Shards:   2,
		Replicas: 1,
		Base:     base,
		Retry:    RetryPolicy{MaxAttempts: 4, Seed: 9},
	}
}

// clusterControl builds the unsharded control system over the same
// corpus: replicas and shards synthesize from the same global (ID,
// seed) slots, so its answers are the byte-exact truth.
func clusterControl(t *testing.T) (*System, map[string][]byte) {
	t.Helper()
	control, err := New(chaosBaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string][]byte)
	for _, spec := range chaosSpecPool(control) {
		res, err := control.RunQuery(spec)
		if err != nil {
			t.Fatalf("control failed for %s: %v", spec.Label(), err)
		}
		want[spec.Key()] = marshalResult(t, control, res)
	}
	return control, want
}

// deadLink is a 100% drop policy: every dial of the node fails typed.
func deadLink() *faultsim.Policy { return &faultsim.Policy{DropProb: 1.0} }

// TestClusterBaselineByteIdentical: with no faults anywhere, every
// query through the cluster returns bytes identical to the unsharded
// control, every read is served by a primary with no failovers, and
// the corpus is actually partitioned (no node holds everything).
func TestClusterBaselineByteIdentical(t *testing.T) {
	control, want := clusterControl(t)
	cs, err := NewClusterSystem(clusterChaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Studies) != len(control.Studies) {
		t.Fatalf("cluster corpus %d studies, control %d", len(cs.Studies), len(control.Studies))
	}
	total := 0
	for sh, nodes := range cs.Nodes {
		n := len(nodes[0].Studies)
		total += n
		for r := 1; r < len(nodes); r++ {
			if len(nodes[r].Studies) != n {
				t.Fatalf("shard %d replica %d holds %d studies, primary %d", sh, r, len(nodes[r].Studies), n)
			}
		}
		if n == len(control.Studies) {
			t.Errorf("shard %d holds the whole corpus — not partitioned", sh)
		}
	}
	if total != len(control.Studies) {
		t.Fatalf("shards hold %d studies total, corpus has %d", total, len(control.Studies))
	}
	for _, spec := range chaosSpecPool(control) {
		res, err := cs.RunQuery(spec)
		if err != nil {
			t.Fatalf("cluster query %s: %v", spec.Label(), err)
		}
		if got := marshalResult(t, control, res); !bytes.Equal(got, want[spec.Key()]) {
			t.Fatalf("cluster result differs from control for %s", spec.Label())
		}
		if res.Shard == nil {
			t.Fatalf("no shard info on %s", spec.Label())
		}
		if res.Shard.Failovers != 0 || res.Shard.Attempts != 1 {
			t.Errorf("fault-free read did extra work: %+v", res.Shard)
		}
		if sh, ok := cs.Route(spec.StudyID); !ok || sh != res.Shard.Shard {
			t.Errorf("route says shard %d (ok=%v), served by %d", sh, ok, res.Shard.Shard)
		}
	}
	if got := cs.Metrics.Counter("cluster_failover_total").Value(); got != 0 {
		t.Errorf("cluster_failover_total = %d on a healthy cluster", got)
	}
}

// TestClusterNodeKilledMidRun is the acceptance scenario: a primary is
// killed partway through a run. Every query before the kill is served
// by the primary; every query after fails over to the replica — and
// all of them return bytes identical to the control. The failover
// counter matches the injected drop count exactly.
func TestClusterNodeKilledMidRun(t *testing.T) {
	control, want := clusterControl(t)
	cs, err := NewClusterSystem(clusterChaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	pool := chaosSpecPool(control)
	// Kill the shard that serves the most pool queries.
	perShard := map[int]int{}
	for _, spec := range pool {
		sh, _ := cs.Route(spec.StudyID)
		perShard[sh]++
	}
	victim, best := 0, -1
	for sh, n := range perShard {
		if n > best || (n == best && sh < victim) {
			victim, best = sh, n
		}
	}

	kill := len(pool) / 2
	inj := faultsim.New(*deadLink())
	onVictim, failovers := 0, 0
	for i, spec := range pool {
		if i == kill {
			cs.Nodes[victim][0].Link.SetFaults(inj)
		}
		res, err := cs.RunQuery(spec)
		if err != nil {
			t.Fatalf("query %d (%s) failed despite a live replica: %v", i, spec.Label(), err)
		}
		if got := marshalResult(t, control, res); !bytes.Equal(got, want[spec.Key()]) {
			t.Fatalf("query %d (%s): result differs from control", i, spec.Label())
		}
		sh, _ := cs.Route(spec.StudyID)
		if sh != victim {
			continue
		}
		onVictim++
		if i < kill {
			if res.Shard.Node != fmt.Sprintf("s%dp", victim) {
				t.Errorf("query %d before kill served by %s, want primary", i, res.Shard.Node)
			}
		} else {
			if res.Shard.Node != fmt.Sprintf("s%dr1", victim) {
				t.Errorf("query %d after kill served by %s, want replica", i, res.Shard.Node)
			}
			if res.Shard.Failovers != 1 {
				t.Errorf("query %d after kill: failovers = %d, want 1", i, res.Shard.Failovers)
			}
			failovers += res.Shard.Failovers
		}
	}
	if onVictim < 4 {
		t.Fatalf("victim shard served only %d pool queries — test is vacuous", onVictim)
	}
	// Exact accounting: one drop injected per post-kill dial of the dead
	// primary, one failover per post-kill read.
	drops := inj.Count(faultsim.Drop)
	if got := cs.Metrics.Counter("cluster_failover_total").Value(); got != int64(failovers) || got != int64(drops) {
		t.Errorf("cluster_failover_total = %d, want %d (= injected drops %d)", got, failovers, drops)
	}
	if got := cs.Metrics.Counter("cluster_partial_total").Value(); got != 0 {
		t.Errorf("cluster_partial_total = %d, but no shard was lost", got)
	}
}

// TestClusterDeadShardPartial kills both nodes of a shard: scatter-
// gather returns the surviving shards' results byte-identical plus a
// typed PartialResult naming exactly the lost shard, and the partial /
// unavailable counters match the loss exactly.
func TestClusterDeadShardPartial(t *testing.T) {
	control, want := clusterControl(t)
	cfg := clusterChaosConfig()
	cfg.Retry = RetryPolicy{MaxAttempts: 2, Seed: 9}
	// Pick the victim from the routing alone (stable across runs).
	part := cluster.NewPartitioner(cfg.Shards)
	victim := part.Shard(cluster.Key{Patient: control.Studies[0].PatientID, Study: control.Studies[0].StudyID})
	cfg.NodeFaults = func(shard, replica int) (link, device *faultsim.Policy) {
		if shard == victim {
			return deadLink(), nil
		}
		return nil, nil
	}
	cs, err := NewClusterSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := chaosSpecPool(control)
	items, partial := cs.RunQueries(pool, 1)

	lost := 0
	for i, item := range items {
		sh, _ := cs.Route(item.Spec.StudyID)
		if sh == victim {
			lost++
			if item.Err == nil {
				t.Fatalf("item %d on dead shard %d succeeded", i, victim)
			}
			if !errors.Is(item.Err, cluster.ErrShardUnavailable) {
				t.Fatalf("item %d: error not typed ErrShardUnavailable: %v", i, item.Err)
			}
			if !errors.Is(item.Err, netsim.ErrDropped) {
				t.Errorf("item %d: underlying drop lost from chain: %v", i, item.Err)
			}
			continue
		}
		if item.Err != nil {
			t.Fatalf("item %d on healthy shard failed: %v", i, item.Err)
		}
		if got := marshalResult(t, control, item.Res); !bytes.Equal(got, want[item.Spec.Key()]) {
			t.Fatalf("item %d: surviving result differs from control", i)
		}
	}
	if lost == 0 {
		t.Fatal("no pool queries routed to the victim shard — test is vacuous")
	}
	if partial == nil {
		t.Fatal("no PartialResult despite a dead shard")
	}
	if ls := partial.LostShards(); len(ls) != 1 || ls[0] != victim {
		t.Fatalf("partial names shards %v, want [%d]", ls, victim)
	}
	if partial.LostKeys() != lost {
		t.Errorf("partial reports %d lost keys, want %d", partial.LostKeys(), lost)
	}
	if partial.TotalShards != cfg.Shards {
		t.Errorf("partial.TotalShards = %d, want %d", partial.TotalShards, cfg.Shards)
	}
	// Exact metric accounting: one partial batch, one unavailable read
	// per lost item.
	if got := cs.Metrics.Counter("cluster_partial_total").Value(); got != 1 {
		t.Errorf("cluster_partial_total = %d, want 1", got)
	}
	if got := cs.Metrics.Counter("cluster_lost_queries_total").Value(); got != int64(lost) {
		t.Errorf("cluster_lost_queries_total = %d, want %d", got, lost)
	}
	if got := cs.Metrics.Counter("cluster_shard_unavailable_total").Value(); got != int64(lost) {
		t.Errorf("cluster_shard_unavailable_total = %d, want %d", got, lost)
	}
}

// TestClusterCorruptNodeFailover corrupts every page the primary's
// device returns: checksums turn the rot into typed errors and reads
// fail over to the replica — except where the server can degrade to an
// in-memory recompute (band queries), which is equally correct. Either
// way every answer stays byte-identical to the control.
func TestClusterCorruptNodeFailover(t *testing.T) {
	control, want := clusterControl(t)
	cfg := clusterChaosConfig()
	cfg.NodeFaults = func(shard, replica int) (link, device *faultsim.Policy) {
		if replica == 0 {
			return nil, &faultsim.Policy{PageCorruptProb: 1.0}
		}
		return nil, nil
	}
	cs, err := NewClusterSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	failovers := 0
	for _, spec := range chaosSpecPool(control) {
		res, err := cs.RunQuery(spec)
		if err != nil {
			t.Fatalf("query %s failed despite clean replicas: %v", spec.Label(), err)
		}
		if got := marshalResult(t, control, res); !bytes.Equal(got, want[spec.Key()]) {
			t.Fatalf("query %s: result differs from control", spec.Label())
		}
		failovers += res.Shard.Failovers
	}
	if failovers == 0 {
		t.Fatal("no failovers despite fully corrupt primaries")
	}
	if got := cs.Metrics.Counter("cluster_failover_total").Value(); got != int64(failovers) {
		t.Errorf("cluster_failover_total = %d, want %d", got, failovers)
	}
	// The corruption was detected, not silently served.
	detected := uint64(0)
	for _, nodes := range cs.Nodes {
		detected += nodes[0].LFM.Stats().ChecksumFailures
	}
	if detected == 0 {
		t.Error("no checksum failures recorded on corrupt primaries")
	}
}

// TestClusterSlowNodeHedged puts heavy injected latency on every
// primary link: once the latency EWMA crosses HedgeAfter, reads hedge
// to the replica and the fast answer wins — still byte-identical.
func TestClusterSlowNodeHedged(t *testing.T) {
	control, want := clusterControl(t)
	cfg := clusterChaosConfig()
	slow := 50 * time.Millisecond
	cfg.HedgeAfter = 10 * time.Millisecond
	cfg.NodeFaults = func(shard, replica int) (link, device *faultsim.Policy) {
		if replica == 0 {
			return &faultsim.Policy{LatencyProb: 1.0, ExtraLatency: slow}, nil
		}
		return nil, nil
	}
	cs, err := NewClusterSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hedged, won := 0, 0
	for _, spec := range chaosSpecPool(control) {
		res, err := cs.RunQuery(spec)
		if err != nil {
			t.Fatalf("query %s: %v", spec.Label(), err)
		}
		if got := marshalResult(t, control, res); !bytes.Equal(got, want[spec.Key()]) {
			t.Fatalf("query %s: hedged result differs from control", spec.Label())
		}
		if res.Shard.Hedged {
			hedged++
			if res.Shard.HedgeWon {
				won++
				if res.Shard.Node[2] != 'r' {
					t.Errorf("query %s: hedge won but served by %s, want the replica", spec.Label(), res.Shard.Node)
				}
			}
		}
	}
	if hedged == 0 {
		t.Fatal("no reads hedged despite saturated slow primaries")
	}
	if won == 0 {
		t.Error("no hedge ever won against a 50ms-slower primary")
	}
	if got := cs.Metrics.Counter("cluster_hedged_total").Value(); got != int64(hedged) {
		t.Errorf("cluster_hedged_total = %d, want %d", got, hedged)
	}
}

// TestClusterFlappingNodeBreaker drives a primary through
// fail-fail-fail-recover: the breaker opens at the threshold (traffic
// stops dialing the dead node), then a simulated-time half-open probe
// finds it healthy and closes the breaker, and the primary serves
// again. Deterministic: the flap is a pinned fault schedule, the clock
// is simulated.
func TestClusterFlappingNodeBreaker(t *testing.T) {
	control, want := clusterControl(t)
	study := control.Studies[0]
	cfg := clusterChaosConfig()
	victim := cluster.NewPartitioner(cfg.Shards).Shard(cluster.Key{Patient: study.PatientID, Study: study.StudyID})
	cfg.Breaker = cluster.BreakerConfig{FailureThreshold: 3, Cooldown: 20 * time.Millisecond}
	// The primary drops its first three dials (ops pin one decision per
	// link crossing; a dropped request is one crossing), then is healthy.
	cfg.NodeFaults = func(shard, replica int) (link, device *faultsim.Policy) {
		if shard == victim && replica == 0 {
			return &faultsim.Policy{Schedule: []faultsim.Scheduled{
				{Op: 1, Kind: faultsim.Drop},
				{Op: 2, Kind: faultsim.Drop},
				{Op: 3, Kind: faultsim.Drop},
			}}, nil
		}
		return nil, nil
	}
	cs, err := NewClusterSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{StudyID: study.StudyID, Atlas: "Talairach", FullStudy: true}
	primary := fmt.Sprintf("s%dp", victim)

	var servedBy []string
	sawOpen := false
	for i := 0; i < 40; i++ {
		res, err := cs.RunQuery(spec)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got := marshalResult(t, control, res); !bytes.Equal(got, want[spec.Key()]) {
			t.Fatalf("query %d: result differs from control", i)
		}
		servedBy = append(servedBy, res.Shard.Node)
		if cs.Cluster.NodeState(victim, 0) == cluster.BreakerOpen {
			sawOpen = true
		}
		if sawOpen && res.Shard.Node == primary {
			break // recovered through the half-open probe
		}
	}
	if !sawOpen {
		t.Fatal("breaker never opened after three consecutive drops")
	}
	last := servedBy[len(servedBy)-1]
	if last != primary {
		t.Fatalf("primary never recovered; reads still served by %s (breaker %v)", last, cs.Cluster.NodeState(victim, 0))
	}
	if got := cs.Cluster.NodeState(victim, 0); got != cluster.BreakerClosed {
		t.Errorf("breaker after recovery = %v, want closed", got)
	}
	// The three pinned drops produced at most three failovers; after the
	// breaker opened, reads went straight to the replica without dialing
	// (or re-failing) the primary.
	if got := cs.Metrics.Counter("cluster_failover_total").Value(); got != 3 {
		t.Errorf("cluster_failover_total = %d, want exactly the 3 injected drops", got)
	}
}

// TestClusterConsistentBandRegionPartial: the population n-way band
// intersection degrades gracefully — with a shard dead, it returns the
// intersection over surviving studies plus the typed partial, and that
// region matches the control's intersection over the same survivors.
func TestClusterConsistentBandRegionPartial(t *testing.T) {
	control, err := New(chaosBaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	var studies []int
	for _, st := range control.Studies {
		studies = append(studies, st.StudyID)
	}
	b := control.BandRegions[studies[0]][0]

	cfg := clusterChaosConfig()
	cfg.Retry = RetryPolicy{MaxAttempts: 2, Seed: 9}
	victim := cluster.NewPartitioner(cfg.Shards).Shard(cluster.Key{Patient: studies[0], Study: studies[0]})
	cfg.NodeFaults = func(shard, replica int) (link, device *faultsim.Policy) {
		if shard == victim {
			return deadLink(), nil
		}
		return nil, nil
	}
	cs, err := NewClusterSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, partial, err := cs.ConsistentBandRegion(studies, int(b.Lo), int(b.Hi), EncHilbertNaive, 1)
	if err != nil {
		t.Fatalf("ConsistentBandRegion: %v", err)
	}
	if partial == nil {
		t.Fatal("no partial despite a dead shard")
	}
	if ls := partial.LostShards(); len(ls) != 1 || ls[0] != victim {
		t.Fatalf("partial names %v, want [%d]", ls, victim)
	}
	var survivors []int
	for _, id := range studies {
		if sh, _ := cs.Route(id); sh != victim {
			survivors = append(survivors, id)
		}
	}
	if len(survivors) == 0 || len(survivors) == len(studies) {
		t.Fatalf("survivors %v of %v — test is vacuous", survivors, studies)
	}
	wantRegion, err := control.ConsistentBandRegion(survivors, int(b.Lo), int(b.Hi), EncHilbertNaive, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotEnc, err := rencode.Encode(rencode.Naive, got)
	if err != nil {
		t.Fatal(err)
	}
	wantEnc, err := rencode.Encode(rencode.Naive, wantRegion)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotEnc, wantEnc) {
		t.Fatalf("surviving intersection differs from control over the same studies")
	}
}

// TestClusterChaosDeterminism runs an identical degraded workload twice
// (serial, fixed seeds): per-item outcomes, shard/node assignments,
// cluster counters, and the simulated clock must match exactly.
func TestClusterChaosDeterminism(t *testing.T) {
	type outcome struct {
		OK    bool
		Node  string
		Blob  string
		Err   string
		Extra int // failovers + retries
	}
	run := func() ([]outcome, int64, int64, time.Duration) {
		cfg := clusterChaosConfig()
		cfg.Breaker = cluster.BreakerConfig{FailureThreshold: 3, Cooldown: 50 * time.Millisecond}
		cfg.HedgeAfter = 40 * time.Millisecond
		cfg.NodeFaults = func(shard, replica int) (link, device *faultsim.Policy) {
			if replica == 0 {
				// Flaky primaries: drops and latency, seeded per shard.
				return &faultsim.Policy{
					Seed: uint64(1000 + shard), DropProb: 0.25,
					LatencyProb: 0.2, ExtraLatency: 60 * time.Millisecond,
				}, nil
			}
			return &faultsim.Policy{Seed: uint64(2000 + shard), DropProb: 0.05}, nil
		}
		cs, err := NewClusterSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Build the pool from the global corpus so both runs query
		// every study regardless of sharding.
		var pool []QuerySpec
		for _, st := range cs.Studies {
			pool = append(pool,
				QuerySpec{StudyID: st.StudyID, Atlas: "Talairach", FullStudy: true},
				QuerySpec{StudyID: st.StudyID, Atlas: "Talairach", Structure: "ntal"},
			)
		}
		pick := faultsim.NewRand(77)
		var outs []outcome
		for i := 0; i < 120; i++ {
			spec := pool[pick.Intn(len(pool))]
			res, err := cs.RunQuery(spec)
			o := outcome{OK: err == nil}
			if err == nil {
				o.Node = res.Shard.Node
				o.Blob = string(marshalResult(t, cs.Nodes[0][0], res))
				o.Extra = res.Shard.Failovers + res.Shard.Retries
			} else {
				o.Err = err.Error()
			}
			outs = append(outs, o)
		}
		return outs,
			cs.Metrics.Counter("cluster_failover_total").Value(),
			cs.Metrics.Counter("cluster_hedged_total").Value(),
			cs.Cluster.SimNow()
	}
	o1, f1, h1, s1 := run()
	o2, f2, h2, s2 := run()
	if !reflect.DeepEqual(o1, o2) {
		t.Error("per-query outcomes diverged between identical degraded runs")
	}
	if f1 != f2 || h1 != h2 {
		t.Errorf("cluster counters diverged: failover %d vs %d, hedged %d vs %d", f1, f2, h1, h2)
	}
	if s1 != s2 {
		t.Errorf("simulated clock diverged: %v vs %v", s1, s2)
	}
	if f1 == 0 {
		t.Error("no failovers happened — degraded workload appears inert")
	}
}

// TestClusterScatterGatherRace exercises the concurrent scatter-gather
// under -race: parallel workers against a cluster with a dead shard
// must uphold byte-identical-or-typed-partial without data races.
func TestClusterScatterGatherRace(t *testing.T) {
	control, want := clusterControl(t)
	cfg := clusterChaosConfig()
	cfg.Retry = RetryPolicy{MaxAttempts: 2, Seed: 9}
	victim := cluster.NewPartitioner(cfg.Shards).Shard(cluster.Key{Patient: control.Studies[0].PatientID, Study: control.Studies[0].StudyID})
	cfg.NodeFaults = func(shard, replica int) (link, device *faultsim.Policy) {
		if shard == victim {
			return deadLink(), nil
		}
		return nil, nil
	}
	cs, err := NewClusterSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := chaosSpecPool(control)
	items, partial := cs.RunQueries(pool, 4)
	for i, item := range items {
		if sh, _ := cs.Route(item.Spec.StudyID); sh == victim {
			if item.Err == nil || !errors.Is(item.Err, cluster.ErrShardUnavailable) {
				t.Fatalf("item %d on dead shard: err = %v, want typed unavailable", i, item.Err)
			}
			continue
		}
		if item.Err != nil {
			t.Fatalf("item %d on healthy shard: %v", i, item.Err)
		}
		if got := marshalResult(t, control, item.Res); !bytes.Equal(got, want[item.Spec.Key()]) {
			t.Fatalf("item %d: result differs from control", i)
		}
	}
	if partial == nil || len(partial.Failed) != 1 || partial.Failed[0].Shard != victim {
		t.Fatalf("partial = %v, want exactly shard %d lost", partial, victim)
	}
}
