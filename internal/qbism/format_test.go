package qbism

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"qbism/internal/sdb"
)

func TestWriteFormatters(t *testing.T) {
	s := testSystem(t)
	var buf bytes.Buffer

	rows, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	WriteTable3(&buf, rows)
	if !strings.Contains(buf.String(), "Q1") || !strings.Contains(buf.String(), "LFM-IO") {
		t.Error("Table 3 output incomplete")
	}

	t4, err := s.Table4(128, 159)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	WriteTable4(&buf, t4, 128, 159)
	for _, want := range []string{EncHilbertNaive, EncZNaive, EncOctant} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table 4 output missing %s", want)
		}
	}

	rep, err := s.RunRatios()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	WriteRunRatios(&buf, rep)
	if !strings.Contains(buf.String(), "1.27") { // the paper reference line
		t.Error("run-ratio output missing paper reference")
	}

	dl, err := s.DeltaLaw()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	WriteDeltaLaw(&buf, dl)
	if !strings.Contains(buf.String(), "mean alpha") {
		t.Error("delta-law output incomplete")
	}

	sz, err := s.Sizes()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	WriteSizes(&buf, sz)
	if !strings.Contains(buf.String(), "entropy") {
		t.Error("sizes output incomplete")
	}

	mg, err := s.MingapSweep([]uint64{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	WriteMingap(&buf, mg)
	if !strings.Contains(buf.String(), "mingap") {
		t.Error("mingap output incomplete")
	}
}

func TestTable4One(t *testing.T) {
	s := testSystem(t)
	row, err := s.Table4One(128, 159, EncHilbertNaive)
	if err != nil {
		t.Fatal(err)
	}
	if row.Encoding != EncHilbertNaive || row.NumStudies != 3 || row.LFMPages == 0 {
		t.Errorf("row = %+v", row)
	}
	if _, err := s.Table4One(128, 159, "bogus-encoding"); err == nil {
		t.Error("unknown encoding accepted")
	}
	if _, err := s.Table4One(7, 9, EncHilbertNaive); err == nil {
		t.Error("unknown band accepted")
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Microsecond:  "500µs",
		20 * time.Millisecond:   "20ms",
		1500 * time.Millisecond: "1.50s",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
	if truncate("abcdef", 4) != "abc…" || truncate("ab", 4) != "ab" {
		t.Error("truncate broken")
	}
}

func TestSplitResponseErrors(t *testing.T) {
	if _, _, err := splitResponse([]byte{1, 2}); err == nil {
		t.Error("short response accepted")
	}
	if _, _, err := splitResponse([]byte{0, 0, 0, 99, 1, 2}); err == nil {
		t.Error("truncated header accepted")
	}
	if _, _, err := splitResponse([]byte{0, 0, 0, 2, '{', 'x'}); err == nil {
		t.Error("bad JSON header accepted")
	}
}

func TestRegionFromValueErrors(t *testing.T) {
	s := testSystem(t)
	if _, err := regionFromValue(s.DB, sdb.Int(5)); err == nil {
		t.Error("int as region accepted")
	}
	if _, err := regionFromValue(s.DB, sdb.Bytes([]byte{0x01, 0x02})); err == nil {
		t.Error("garbage bytes accepted")
	}
	if _, err := regionFromValue(s.DB, sdb.Long(999999)); err == nil {
		t.Error("dangling handle accepted")
	}
	// A DataRegion blob decodes to its region.
	res := s.DB.MustExec(`
select extractVoxels(wv.data, as.region)
from warpedVolume wv, atlasStructure as, neuralStructure ns
where wv.studyId = 1 and wv.atlasId = as.atlasId
  and as.structureId = ns.structureId and ns.structureName = 'putamen'`)
	r, err := regionFromValue(s.DB, res.Rows[0][0])
	if err != nil {
		t.Fatal(err)
	}
	putamen, _ := s.Atlas.ByName("putamen")
	if r.NumVoxels() != putamen.Region.NumVoxels() {
		t.Error("DataRegion blob region mismatched")
	}
}

func TestQuerySpecLabelAndKey(t *testing.T) {
	box := [6]uint32{1, 2, 3, 4, 5, 6}
	specs := []QuerySpec{
		{StudyID: 1, FullStudy: true},
		{StudyID: 1, Box: &box},
		{StudyID: 1, Structure: "ntal"},
		{StudyID: 1, HasBand: true, BandLo: 0, BandHi: 31},
		{StudyID: 1, Structure: "ntal", HasBand: true, BandLo: 0, BandHi: 31},
		{StudyID: 1},
	}
	seen := make(map[string]bool)
	for _, sp := range specs {
		if sp.Label() == "" {
			t.Errorf("empty label for %+v", sp)
		}
		k := sp.Key()
		if seen[k] {
			t.Errorf("duplicate cache key %q", k)
		}
		seen[k] = true
	}
}
