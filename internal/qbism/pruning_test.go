package qbism

import (
	"bytes"
	"testing"

	"qbism/internal/region"
	"qbism/internal/rencode"
)

// The run-pruned read path (gap-coalesced extraction, the LFM page
// cache, the pruned band slow path) must be invisible in results: every
// combination of gap threshold and cache size returns bytes identical
// to the seed plan, across the whole chaos query corpus. Only the I/O
// counters may change.

// runCorpus executes every spec in the pool and returns the marshaled
// result blobs keyed by spec.
func runCorpus(t *testing.T, sys *System, pool []QuerySpec) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(pool))
	for _, spec := range pool {
		res, err := sys.RunQuery(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Label(), err)
		}
		out[spec.Key()] = marshalResult(t, sys, res)
	}
	return out
}

func TestPrunedReadPathByteIdentical(t *testing.T) {
	baseline, err := New(chaosBaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	pool := chaosSpecPool(baseline)
	want := runCorpus(t, baseline, pool)

	variants := []struct {
		name  string
		gap   uint64
		cache int
	}{
		{"gap2", 2, 0},
		{"gap8", 8, 0},
		{"gap64", 64, 0},
		{"cache64", 0, 64},
		{"gap8cache64", 8, 64},
		{"gap8cache2", 8, 2}, // tiny cache: constant eviction, same bytes
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := chaosBaseConfig()
			cfg.ReadGapPages = v.gap
			cfg.CachePages = v.cache
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := runCorpus(t, sys, pool)
			for _, spec := range pool {
				if !bytes.Equal(got[spec.Key()], want[spec.Key()]) {
					t.Fatalf("%s: result differs from seed read path", spec.Label())
				}
			}
			if v.cache >= 64 {
				// A cache big enough for the working set must hit across
				// the corpus's repeated reads.
				if st := sys.LFM.Stats(); st.CacheHits == 0 {
					t.Error("cache enabled but never hit across the corpus")
				}
			}
		})
	}
}

// TestPrunedReadPathUnderFaults reruns the chaos workload with the gap
// threshold and the page cache both on: successes must stay
// byte-identical to the fault-free baseline, failures must stay typed
// and retryable, and the PR 1 success-rate guarantee must hold.
func TestPrunedReadPathUnderFaults(t *testing.T) {
	clean, err := New(chaosBaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	pool := chaosSpecPool(clean)
	want := runCorpus(t, clean, pool)

	cfg := chaosBaseConfig()
	cfg.ReadGapPages = 4
	cfg.CachePages = 32
	cfg.LinkFaults = chaosLinkPolicy(301)
	cfg.DeviceFaults = chaosDevicePolicy(302)
	cfg.Retry = DefaultRetryPolicy()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	succeeded := 0
	total := 0
	for round := 0; round < 4; round++ {
		for _, spec := range pool {
			total++
			res, err := sys.RunQuery(spec)
			if err != nil {
				if !RetryableError(err) {
					t.Fatalf("%s: fatal-classified error escaped: %v", spec.Label(), err)
				}
				continue
			}
			succeeded++
			if got := marshalResult(t, sys, res); !bytes.Equal(got, want[spec.Key()]) {
				t.Fatalf("%s: silent corruption through cache+gap path (degraded=%v)",
					spec.Label(), res.Meta.Degraded)
			}
		}
	}
	if rate := float64(succeeded) / float64(total); rate < 0.95 {
		t.Errorf("success rate %.3f < 0.95 (%d/%d)", rate, succeeded, total)
	}
	if st := sys.LFM.Stats(); st.CacheHits == 0 {
		t.Error("cache never hit under faults")
	}
}

// TestExtractGapCoalescing drives ExtractStoredOpts directly over a
// deliberately scattered region: raising the gap threshold must never
// change the bytes, must never increase the number of read operations
// (seeks), and at a gap covering the whole field must collapse to a
// single read.
func TestExtractGapCoalescing(t *testing.T) {
	cfg := chaosBaseConfig()
	cfg.Bits = 5 // 32^3 = 8 pages, so page gaps exist
	cfg.NumPET, cfg.NumMRI = 1, 0
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.DB.Exec("select wv.data from warpedVolume wv where wv.studyId = 1")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("volume lookup: %v", err)
	}
	h := res.Rows[0][0].L

	// Short runs on pages 0, 2, and 5 of the 8-page field: a 1-page gap
	// and a 2-page gap between consecutive ranges.
	var runs []region.Run
	for _, p := range []uint64{0, 2, 5} {
		runs = append(runs, region.Run{Lo: p * 4096, Hi: p*4096 + 16})
	}
	r, err := region.FromRuns(sys.Curve, runs)
	if err != nil {
		t.Fatal(err)
	}

	sys.LFM.ResetStats()
	base, err := ExtractStored(sys.LFM, h, r)
	if err != nil {
		t.Fatal(err)
	}
	if reads := sys.LFM.Stats().Reads; reads != 3 {
		t.Fatalf("seed plan reads = %d, want 3 (one per scattered range)", reads)
	}

	// gap 1 closes the 1-page hole, gap 2 closes both, larger gaps stay
	// at a single contiguous read.
	for _, tc := range []struct{ gap, wantReads uint64 }{{1, 2}, {2, 1}, {8, 1}} {
		before := sys.LFM.Stats()
		got, err := ExtractStoredOpts(sys.LFM, h, r, ExtractOpts{GapPages: tc.gap})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Values, base.Values) || !got.Region.Equal(base.Region) {
			t.Fatalf("gap %d changed extraction bytes", tc.gap)
		}
		if d := sys.LFM.Stats().Sub(before); d.Reads != tc.wantReads {
			t.Errorf("gap %d: reads = %d, want %d", tc.gap, d.Reads, tc.wantReads)
		}
	}
}

// TestPruningBeatsFullVolume is the headline acceptance check: a query
// on a small REGION must read at least 5x fewer device pages than the
// full-volume read of the same study.
func TestPruningBeatsFullVolume(t *testing.T) {
	cfg := Config{
		Bits: 6, NumPET: 1, NumMRI: 0, Seed: 11,
		Method: rencode.Naive, SmallStudies: true, Checksums: true,
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	study := sys.Studies[0].StudyID
	full, err := sys.RunQuery(QuerySpec{StudyID: study, Atlas: "Talairach", FullStudy: true})
	if err != nil {
		t.Fatal(err)
	}
	box := [6]uint32{0, 0, 0, 15, 15, 15}
	small, err := sys.RunQuery(QuerySpec{StudyID: study, Atlas: "Talairach", Box: &box})
	if err != nil {
		t.Fatal(err)
	}
	if small.Meta.LFMPages == 0 || full.Meta.LFMPages == 0 {
		t.Fatalf("page counters empty: box=%d full=%d", small.Meta.LFMPages, full.Meta.LFMPages)
	}
	if small.Meta.LFMPages*5 > full.Meta.LFMPages {
		t.Errorf("box query read %d pages vs full %d — pruning under 5x",
			small.Meta.LFMPages, full.Meta.LFMPages)
	}
	// A structure query is also pruned, if less dramatically.
	str, err := sys.RunQuery(QuerySpec{StudyID: study, Atlas: "Talairach", Structure: "putamen"})
	if err != nil {
		t.Fatal(err)
	}
	if str.Meta.LFMPages >= full.Meta.LFMPages {
		t.Errorf("structure query read %d pages, full read %d — no pruning at all",
			str.Meta.LFMPages, full.Meta.LFMPages)
	}
	t.Logf("pages: full=%d box16=%d putamen=%d", full.Meta.LFMPages, small.Meta.LFMPages, str.Meta.LFMPages)
}
