package qbism

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct{ header, body []byte }{
		{[]byte(`{"n":32}`), []byte("voxels")},
		{nil, nil},
		{[]byte("h"), nil},
		{nil, make([]byte, 10000)},
	}
	for i, c := range cases {
		f := encodeFrame(c.header, c.body)
		h, b, err := decodeFrame(f)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(h, c.header) || !bytes.Equal(b, c.body) {
			t.Errorf("case %d: round trip mismatch", i)
		}
	}
}

func TestFrameDetectsEveryBitFlip(t *testing.T) {
	f := encodeFrame([]byte(`{"studyId":1}`), []byte{1, 2, 3, 4, 5})
	for pos := 0; pos < len(f); pos++ {
		for bit := 0; bit < 8; bit++ {
			dam := append([]byte(nil), f...)
			dam[pos] ^= 1 << bit
			_, _, err := decodeFrame(dam)
			if err == nil {
				t.Fatalf("flip at byte %d bit %d undetected", pos, bit)
			}
			if !errors.Is(err, ErrFrameCorrupt) && !errors.Is(err, ErrFrameTruncated) {
				t.Fatalf("flip at byte %d bit %d: untyped error %v", pos, bit, err)
			}
		}
	}
}

func TestFrameDetectsTruncation(t *testing.T) {
	f := encodeFrame([]byte("header"), []byte("body bytes"))
	for n := 0; n < len(f); n++ {
		_, _, err := decodeFrame(f[:n])
		if !errors.Is(err, ErrFrameTruncated) && !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("truncation to %d bytes: %v", n, err)
		}
	}
	// Trailing garbage is corruption, not a longer frame.
	if _, _, err := decodeFrame(append(append([]byte(nil), f...), 0xFF)); !errors.Is(err, ErrFrameCorrupt) {
		t.Errorf("trailing byte: %v", err)
	}
}

func TestFrameHugeDeclaredLength(t *testing.T) {
	// A corrupted length field must not cause a slice panic or a huge
	// allocation — just a typed error.
	f := encodeFrame([]byte("hh"), []byte("bb"))
	f[2], f[3], f[4], f[5] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := decodeFrame(f); !errors.Is(err, ErrFrameTruncated) {
		t.Errorf("huge header length: %v", err)
	}
}

func TestQuerySpecKeyDistinct(t *testing.T) {
	// Distinct specs must never share a cache key (the old Key() ignored
	// the Marshal error and could return "" for any failing spec).
	box := [6]uint32{1, 2, 3, 4, 5, 6}
	specs := []QuerySpec{
		{StudyID: 1, Atlas: "Talairach", FullStudy: true},
		{StudyID: 2, Atlas: "Talairach", FullStudy: true},
		{StudyID: 1, Atlas: "Other", FullStudy: true},
		{StudyID: 1, Atlas: "Talairach", Structure: "ntal"},
		{StudyID: 1, Atlas: "Talairach", Structure: "putamen"},
		{StudyID: 1, Atlas: "Talairach", Box: &box},
		{StudyID: 1, Atlas: "Talairach", HasBand: true, BandLo: 0, BandHi: 31},
		{StudyID: 1, Atlas: "Talairach", HasBand: true, BandLo: 32, BandHi: 63},
		{StudyID: 1, Atlas: "Talairach", HasBand: true, BandLo: 32, BandHi: 63, Encoding: EncOctant},
		{StudyID: 1, Atlas: "Talairach", HasBand: true, BandLo: 32, BandHi: 63, Structure: "ntal"},
	}
	seen := make(map[string]int)
	for i, q := range specs {
		k := q.Key()
		if k == "" {
			t.Errorf("spec %d: empty key", i)
		}
		if j, dup := seen[k]; dup {
			t.Errorf("specs %d and %d collide on %q", j, i, k)
		}
		seen[k] = i
	}
}

func TestQuerySpecKeyFallbackDistinct(t *testing.T) {
	// The fallback key (used if Marshal ever fails) must also separate
	// specs that Label() alone would conflate.
	a := QuerySpec{StudyID: 1, Atlas: "A", FullStudy: true}
	b := QuerySpec{StudyID: 1, Atlas: "B", FullStudy: true}
	if a.Label() != b.Label() {
		t.Fatal("test premise broken: labels differ")
	}
	fa := fmt.Sprintf("%s|atlas=%s|enc=%s", a.Label(), a.Atlas, a.Encoding)
	fb := fmt.Sprintf("%s|atlas=%s|enc=%s", b.Label(), b.Atlas, b.Encoding)
	if fa == fb {
		t.Error("fallback keys collide")
	}
}
