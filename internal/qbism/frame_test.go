package qbism

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// The frame codec itself (round trip, bit-flip and truncation
// detection, length-bomb rejection, fuzzing) is tested where it lives:
// internal/transport. This delegation smoke test pins the re-export —
// qbism's wire bytes and error sentinels are transport's.
func TestFrameDelegatesToTransport(t *testing.T) {
	f := encodeFrame([]byte(`{"n":32}`), []byte("voxels"))
	h, b, err := decodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(h, []byte(`{"n":32}`)) || !bytes.Equal(b, []byte("voxels")) {
		t.Error("round trip mismatch through the transport codec")
	}
	f[len(f)-1] ^= 1
	if _, _, err := decodeFrame(f); !errors.Is(err, ErrFrameCorrupt) {
		t.Errorf("corrupt frame: %v, want the re-exported ErrFrameCorrupt", err)
	}
	if _, _, err := decodeFrame(f[:3]); !errors.Is(err, ErrFrameTruncated) {
		t.Errorf("truncated frame: %v, want the re-exported ErrFrameTruncated", err)
	}
}

func TestQuerySpecKeyDistinct(t *testing.T) {
	// Distinct specs must never share a cache key (the old Key() ignored
	// the Marshal error and could return "" for any failing spec).
	box := [6]uint32{1, 2, 3, 4, 5, 6}
	specs := []QuerySpec{
		{StudyID: 1, Atlas: "Talairach", FullStudy: true},
		{StudyID: 2, Atlas: "Talairach", FullStudy: true},
		{StudyID: 1, Atlas: "Other", FullStudy: true},
		{StudyID: 1, Atlas: "Talairach", Structure: "ntal"},
		{StudyID: 1, Atlas: "Talairach", Structure: "putamen"},
		{StudyID: 1, Atlas: "Talairach", Box: &box},
		{StudyID: 1, Atlas: "Talairach", HasBand: true, BandLo: 0, BandHi: 31},
		{StudyID: 1, Atlas: "Talairach", HasBand: true, BandLo: 32, BandHi: 63},
		{StudyID: 1, Atlas: "Talairach", HasBand: true, BandLo: 32, BandHi: 63, Encoding: EncOctant},
		{StudyID: 1, Atlas: "Talairach", HasBand: true, BandLo: 32, BandHi: 63, Structure: "ntal"},
	}
	seen := make(map[string]int)
	for i, q := range specs {
		k := q.Key()
		if k == "" {
			t.Errorf("spec %d: empty key", i)
		}
		if j, dup := seen[k]; dup {
			t.Errorf("specs %d and %d collide on %q", j, i, k)
		}
		seen[k] = i
	}
}

func TestQuerySpecKeyFallbackDistinct(t *testing.T) {
	// The fallback key (used if Marshal ever fails) must also separate
	// specs that Label() alone would conflate.
	a := QuerySpec{StudyID: 1, Atlas: "A", FullStudy: true}
	b := QuerySpec{StudyID: 1, Atlas: "B", FullStudy: true}
	if a.Label() != b.Label() {
		t.Fatal("test premise broken: labels differ")
	}
	fa := fmt.Sprintf("%s|atlas=%s|enc=%s", a.Label(), a.Atlas, a.Encoding)
	fb := fmt.Sprintf("%s|atlas=%s|enc=%s", b.Label(), b.Atlas, b.Encoding)
	if fa == fb {
		t.Error("fallback keys collide")
	}
}
