// Package qbism assembles the QBISM system of the paper: the extended
// DBMS (sdb + lfm) holding the Figure 1 schema, the spatial operators
// registered as user-defined SQL functions, the MedicalServer that
// translates high-level query specifications into SQL, the DX front end,
// and the experiment drivers that regenerate every table and figure of
// the evaluation section.
package qbism

import (
	"encoding/binary"
	"fmt"

	"qbism/internal/lfm"
	"qbism/internal/region"
	"qbism/internal/rencode"
	"qbism/internal/sdb"
	"qbism/internal/volume"
)

// dataRegionTag marks a marshaled DataRegion blob (the DATA_REGION type
// of the paper's footnote 6).
const dataRegionTag = 0xD7

// MarshalDataRegion serializes a DataRegion: the REGION (self-describing
// rencode encoding) followed by the intensity values in curve order.
func MarshalDataRegion(d *volume.DataRegion, method rencode.Method) ([]byte, error) {
	enc, err := rencode.Encode(method, d.Region)
	if err != nil {
		return nil, err
	}
	if uint64(len(d.Values)) != d.Region.NumVoxels() {
		return nil, fmt.Errorf("qbism: %d values for %d voxels", len(d.Values), d.Region.NumVoxels())
	}
	out := make([]byte, 1+4+len(enc)+len(d.Values))
	out[0] = dataRegionTag
	binary.BigEndian.PutUint32(out[1:], uint32(len(enc)))
	copy(out[5:], enc)
	copy(out[5+len(enc):], d.Values)
	return out, nil
}

// UnmarshalDataRegion reverses MarshalDataRegion.
func UnmarshalDataRegion(data []byte) (*volume.DataRegion, error) {
	if len(data) < 5 || data[0] != dataRegionTag {
		return nil, fmt.Errorf("qbism: not a DataRegion blob")
	}
	encLen := binary.BigEndian.Uint32(data[1:5])
	if uint64(len(data)) < 5+uint64(encLen) {
		return nil, fmt.Errorf("qbism: DataRegion region encoding truncated")
	}
	r, err := rencode.Decode(data[5 : 5+encLen])
	if err != nil {
		return nil, err
	}
	values := data[5+encLen:]
	if uint64(len(values)) != r.NumVoxels() {
		return nil, fmt.Errorf("qbism: DataRegion has %d values for %d voxels", len(values), r.NumVoxels())
	}
	return &volume.DataRegion{Region: r, Values: values}, nil
}

// regionFromValue materializes a REGION from a SQL value: a LONG handle
// (stored region, read from the LFM — this is where region I/O is
// counted) or a BYTES blob (intermediate result of another spatial
// function in the same query).
func regionFromValue(db *sdb.DB, v sdb.Value) (*region.Region, error) {
	switch v.T {
	case sdb.TLong:
		data, err := db.LFM().Read(v.L)
		if err != nil {
			return nil, err
		}
		return rencode.Decode(data)
	case sdb.TBytes:
		if len(v.Y) > 0 && v.Y[0] == dataRegionTag {
			d, err := UnmarshalDataRegion(v.Y)
			if err != nil {
				return nil, err
			}
			return d.Region, nil
		}
		return rencode.Decode(v.Y)
	default:
		return nil, fmt.Errorf("qbism: expected a REGION (LONG or BYTES), got %s", v.T)
	}
}

// ExtractStored performs EXTRACT_DATA against a VOLUME stored in a long
// field, with page-coalesced I/O: the runs of the region are mapped to
// 4 KB page ranges, adjacent ranges are merged, and each merged range is
// fetched with a single LFM read. Because VOLUMEs are stored in Hilbert
// order, a spatially clustered region touches few distinct pages — this
// is precisely the mechanism behind the paper's low "LFM Disk I/Os"
// counts for spatial queries.
// ExtractStored is exported for the benchmark harness and for callers
// composing their own storage layers.
func ExtractStored(m *lfm.Manager, h lfm.Handle, r *region.Region) (*volume.DataRegion, error) {
	return ExtractStoredOpts(m, h, r, ExtractOpts{})
}

// ExtractOpts tunes the physical read plan of ExtractStoredOpts.
type ExtractOpts struct {
	// GapPages is the largest page gap between two run ranges worth
	// reading through rather than issuing a separate read: ranges
	// separated by at most GapPages unneeded pages are coalesced into one
	// contiguous fetch. Zero reproduces the seed plan (merge only
	// adjacent/overlapping ranges). The break-even value for a given
	// device is costmodel.CoalesceGapPages — the mingap analysis of
	// region/approx.go applied to device seeks instead of run encoding.
	GapPages uint64
}

// ExtractStoredOpts is ExtractStored with a tunable read plan. The
// result is byte-identical for every opts value; only the number and
// size of device reads change (coalescing only ever widens a fetched
// range, and runs are always assembled from the range that covers them).
func ExtractStoredOpts(m *lfm.Manager, h lfm.Handle, r *region.Region, opts ExtractOpts) (*volume.DataRegion, error) {
	size, err := m.Size(h)
	if err != nil {
		return nil, err
	}
	if size != r.Curve().Length() {
		return nil, fmt.Errorf("qbism: volume field has %d bytes, curve expects %d", size, r.Curve().Length())
	}
	runs := r.Runs()
	if len(runs) == 0 {
		return &volume.DataRegion{Region: r, Values: nil}, nil
	}
	pageSize := m.PageSize()

	// Merge runs into page-aligned ranges, reading through gaps of up to
	// GapPages pages (one wide transfer beats an extra seek).
	type prange struct{ first, last uint64 } // page numbers, inclusive
	var ranges []prange
	for _, run := range runs {
		first, last := run.Lo/pageSize, run.Hi/pageSize
		if n := len(ranges); n > 0 && first <= ranges[n-1].last+1+opts.GapPages {
			if last > ranges[n-1].last {
				ranges[n-1].last = last
			}
			continue
		}
		ranges = append(ranges, prange{first, last})
	}

	// Fetch each merged range (whole pages, clamped to the field size).
	buffers := make([][]byte, len(ranges))
	offsets := make([]uint64, len(ranges))
	for i, pr := range ranges {
		off := pr.first * pageSize
		n := (pr.last-pr.first+1)*pageSize - 0
		if off+n > size {
			n = size - off
		}
		buf, err := m.ReadAt(h, off, n)
		if err != nil {
			return nil, err
		}
		buffers[i] = buf
		offsets[i] = off
	}

	// Assemble run values from the fetched buffers.
	values := make([]byte, 0, r.NumVoxels())
	ri := 0
	for _, run := range runs {
		for ri < len(ranges) && run.Lo/pageSize > ranges[ri].last {
			ri++
		}
		if ri >= len(ranges) {
			return nil, fmt.Errorf("qbism: internal error: run %v past fetched ranges", run)
		}
		buf := buffers[ri]
		off := offsets[ri]
		values = append(values, buf[run.Lo-off:run.Hi-off+1]...)
	}
	return &volume.DataRegion{Region: r, Values: values}, nil
}
