package qbism

import (
	"testing"
)

// TestSystemDeterminism: two systems built from the same seed must be
// bit-identical in every respect an experiment can observe — the whole
// reproduction depends on this.
func TestSystemDeterminism(t *testing.T) {
	cfg := Config{Bits: 4, NumPET: 2, NumMRI: 1, Seed: 99, SmallStudies: true}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Band regions identical.
	for study, bandsA := range a.BandRegions {
		bandsB := b.BandRegions[study]
		if len(bandsA) != len(bandsB) {
			t.Fatalf("study %d band counts differ", study)
		}
		for i := range bandsA {
			if !bandsA[i].Region.Equal(bandsB[i].Region) {
				t.Fatalf("study %d band %d regions differ", study, i)
			}
		}
	}
	// Warped volumes identical.
	for _, st := range a.Studies {
		va, err := a.readStudyVolume(st.StudyID)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := b.readStudyVolume(st.StudyID)
		if err != nil {
			t.Fatal(err)
		}
		ba, bb := va.Bytes(), vb.Bytes()
		for i := range ba {
			if ba[i] != bb[i] {
				t.Fatalf("study %d differs at voxel %d", st.StudyID, i)
			}
		}
	}
	// Query results and I/O counts identical.
	spec := QuerySpec{StudyID: 1, Atlas: "Talairach", Structure: "ntal"}
	ra, err := a.RunQuery(spec)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.RunQuery(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Timing.LFMPages != rb.Timing.LFMPages || ra.Timing.Voxels != rb.Timing.Voxels ||
		ra.Timing.NetMessages != rb.Timing.NetMessages {
		t.Errorf("timings differ: %+v vs %+v", ra.Timing, rb.Timing)
	}
	// Different seeds produce different data.
	c, err := New(Config{Bits: 4, NumPET: 2, NumMRI: 1, Seed: 100, SmallStudies: true})
	if err != nil {
		t.Fatal(err)
	}
	va, _ := a.readStudyVolume(1)
	vc, _ := c.readStudyVolume(1)
	same := 0
	for i := range va.Bytes() {
		if va.Bytes()[i] == vc.Bytes()[i] {
			same++
		}
	}
	if same == len(va.Bytes()) {
		t.Error("different seeds produced identical volumes")
	}
}
