package qbism

import "qbism/internal/transport"

// Retry policy, stats, and classification live at the transport seam
// now (internal/transport/retry.go): the same schedule drives
// single-link retries, cluster failover waits, and retries against a
// live daemon over TCP. The qbism names stay as aliases so the public
// API surface (root package re-exports included) is unchanged.

// RetryPolicy governs how the DX client retries transient medicalQuery
// failures. See transport.RetryPolicy for the backoff contract.
type RetryPolicy = transport.RetryPolicy

// RetryStats reports one query's resilience history alongside its
// QueryMeta.
type RetryStats = transport.RetryStats

// DefaultRetryPolicy survives transient fault rates around 10% with
// better than 99.99% query success.
func DefaultRetryPolicy() RetryPolicy { return transport.DefaultRetryPolicy() }

// RetryableError reports whether err is a transient failure a retry
// can plausibly cure. Delegates to the seam's classification, which
// covers link faults, frame damage, socket failures, admission
// rejections, and device read faults.
func RetryableError(err error) bool { return transport.RetryableError(err) }
