package qbism

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"qbism/internal/sdb"
)

// QuerySpec is the high-level query a user composes in the DX entry
// fields; the MedicalServer translates it into SQL (Section 5.2's
// "division of labor").
type QuerySpec struct {
	StudyID int    `json:"studyId"`
	Atlas   string `json:"atlas"` // atlas name, e.g. "Talairach"

	// FullStudy requests the entire VOLUME (query Q1).
	FullStudy bool `json:"fullStudy,omitempty"`
	// Structure restricts spatially to a named anatomical structure
	// (queries Q3, Q4).
	Structure string `json:"structure,omitempty"`
	// Box restricts spatially to a rectangular solid, inclusive corners
	// (x0,y0,z0,x1,y1,z1) — query Q2.
	Box *[6]uint32 `json:"box,omitempty"`
	// HasBand restricts by intensity to [BandLo, BandHi], which must
	// match a stored band (queries Q5, Q6).
	HasBand bool `json:"hasBand,omitempty"`
	BandLo  int  `json:"bandLo,omitempty"`
	BandHi  int  `json:"bandHi,omitempty"`
	// Encoding selects the band REGION encoding (default EncHilbertNaive).
	Encoding string `json:"encoding,omitempty"`
}

// Key returns a cache key identifying the query.
func (q QuerySpec) Key() string {
	b, _ := json.Marshal(q)
	return string(b)
}

// Label names the query in reports.
func (q QuerySpec) Label() string {
	var parts []string
	switch {
	case q.FullStudy:
		parts = append(parts, "entire study")
	}
	if q.Box != nil {
		parts = append(parts, fmt.Sprintf("box (%d,%d,%d)-(%d,%d,%d)",
			q.Box[0], q.Box[1], q.Box[2], q.Box[3], q.Box[4], q.Box[5]))
	}
	if q.Structure != "" {
		parts = append(parts, q.Structure)
	}
	if q.HasBand {
		parts = append(parts, fmt.Sprintf("band %d-%d", q.BandLo, q.BandHi))
	}
	if len(parts) == 0 {
		parts = append(parts, "empty spec")
	}
	return fmt.Sprintf("study %d: %s", q.StudyID, strings.Join(parts, " in "))
}

// QueryMeta is the server-side response header: atlas coordinate-space
// and patient information from the first SQL query (needed for
// rendering and annotation), plus server-side measurement counters.
type QueryMeta struct {
	N         int     `json:"n"`
	DX        float64 `json:"dx"`
	DY        float64 `json:"dy"`
	DZ        float64 `json:"dz"`
	AtlasID   int     `json:"atlasId"`
	Patient   string  `json:"patient"`
	PatientID int     `json:"patientId"`
	Date      string  `json:"date"`

	DBCPUNanos int64  `json:"dbCpuNanos"` // measured handler CPU (wall) time
	LFMPages   uint64 `json:"lfmPages"`   // 4 KB pages read during the query
}

// medicalQueryMethod is the RPC method name on the link.
const medicalQueryMethod = "medicalQuery"

// registerMedicalServer installs the MedicalServer RPC handler: it
// receives a QuerySpec, generates and executes the SQL, and returns the
// response payload (meta header + DataRegion blob).
func (s *System) registerMedicalServer() {
	s.Link.Register(medicalQueryMethod, func(request []byte) ([]byte, error) {
		var spec QuerySpec
		if err := json.Unmarshal(request, &spec); err != nil {
			return nil, fmt.Errorf("qbism: bad query spec: %v", err)
		}
		start := time.Now()
		pages0 := s.LFM.Stats().PageReads

		meta, err := s.runMetadataQuery(spec)
		if err != nil {
			return nil, err
		}
		blob, err := s.runDataQuery(spec)
		if err != nil {
			return nil, err
		}

		meta.DBCPUNanos = time.Since(start).Nanoseconds()
		meta.LFMPages = s.LFM.Stats().PageReads - pages0
		header, err := json.Marshal(meta)
		if err != nil {
			return nil, err
		}
		resp := make([]byte, 4+len(header)+len(blob))
		binary.BigEndian.PutUint32(resp, uint32(len(header)))
		copy(resp[4:], header)
		copy(resp[4+len(header):], blob)
		return resp, nil
	})
}

// runMetadataQuery executes the paper's first §3.4 query: verify the
// warped study exists and fetch atlas space and patient information.
func (s *System) runMetadataQuery(spec QuerySpec) (*QueryMeta, error) {
	sql := fmt.Sprintf(`
select a.n, a.x0, a.y0, a.z0, a.dx, a.dy, a.dz,
       a.atlasId, p.name, p.patientId, rv.date
from   atlas a, rawVolume rv,
       warpedVolume wv, patient p
where  a.atlasId = wv.atlasId and
       wv.studyId = rv.studyId and
       rv.patientId = p.patientId and
       rv.studyId = %d and a.atlasName = '%s'`, spec.StudyID, escapeSQL(spec.Atlas))
	res, err := s.DB.Exec(sql)
	if err != nil {
		return nil, err
	}
	if len(res.Rows) != 1 {
		return nil, fmt.Errorf("qbism: no warped study %d in atlas %q", spec.StudyID, spec.Atlas)
	}
	row := res.Rows[0]
	return &QueryMeta{
		N: int(row[0].I), DX: row[4].F, DY: row[5].F, DZ: row[6].F,
		AtlasID: int(row[7].I), Patient: row[8].S, PatientID: int(row[9].I), Date: row[10].S,
	}, nil
}

// runDataQuery builds and executes the second §3.4 query, returning the
// marshaled DataRegion. The generated SQL mirrors the paper: a call to
// extractVoxels() with, for mixed queries, intersection() nested inside
// and additional joins.
func (s *System) runDataQuery(spec QuerySpec) ([]byte, error) {
	encoding := spec.Encoding
	if encoding == "" {
		encoding = EncHilbertNaive
	}
	var sql string
	switch {
	case spec.FullStudy:
		sql = fmt.Sprintf(`
select fullVolume(wv.data)
from   warpedVolume wv
where  wv.studyId = %d`, spec.StudyID)

	case spec.Box != nil && !spec.HasBand && spec.Structure == "":
		b := spec.Box
		sql = fmt.Sprintf(`
select extractVoxels(wv.data, boxRegion(%d, %d, %d, %d, %d, %d))
from   warpedVolume wv
where  wv.studyId = %d`, b[0], b[1], b[2], b[3], b[4], b[5], spec.StudyID)

	case spec.Structure != "" && !spec.HasBand:
		sql = fmt.Sprintf(`
select extractVoxels(wv.data, as.region)
from   warpedVolume wv, atlasStructure as, neuralStructure ns
where  wv.studyId = %d and
       wv.atlasId = as.atlasId and
       as.structureId = ns.structureId and
       ns.structureName = '%s'`, spec.StudyID, escapeSQL(spec.Structure))

	case spec.HasBand && spec.Structure == "":
		sql = fmt.Sprintf(`
select extractVoxels(wv.data, ib.region)
from   warpedVolume wv, intensityBand ib
where  wv.studyId = %d and
       ib.studyId = wv.studyId and ib.atlasId = wv.atlasId and
       ib.lo = %d and ib.hi = %d and ib.encoding = '%s'`,
			spec.StudyID, spec.BandLo, spec.BandHi, escapeSQL(encoding))

	case spec.HasBand && spec.Structure != "":
		// Mixed query: intersection() in the select list, extra joins.
		sql = fmt.Sprintf(`
select extractVoxels(wv.data, intersection(ib.region, as.region))
from   warpedVolume wv, intensityBand ib, atlasStructure as, neuralStructure ns
where  wv.studyId = %d and
       ib.studyId = wv.studyId and ib.atlasId = wv.atlasId and
       ib.lo = %d and ib.hi = %d and ib.encoding = '%s' and
       as.atlasId = wv.atlasId and
       as.structureId = ns.structureId and
       ns.structureName = '%s'`,
			spec.StudyID, spec.BandLo, spec.BandHi, escapeSQL(encoding), escapeSQL(spec.Structure))

	default:
		return nil, fmt.Errorf("qbism: query spec selects nothing (set FullStudy, Box, Structure, or a band)")
	}

	res, err := s.DB.Exec(sql)
	if err != nil {
		return nil, err
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return nil, fmt.Errorf("qbism: data query returned %d rows (spec %s)", len(res.Rows), spec.Label())
	}
	v := res.Rows[0][0]
	if v.T != sdb.TBytes {
		return nil, fmt.Errorf("qbism: data query returned %v, want DATA_REGION bytes", v.T)
	}
	return v.Y, nil
}

// escapeSQL doubles single quotes for embedding in SQL literals.
func escapeSQL(s string) string { return strings.ReplaceAll(s, "'", "''") }
