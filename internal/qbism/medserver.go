package qbism

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"qbism/internal/lfm"
	"qbism/internal/obs"
	"qbism/internal/sdb"
	"qbism/internal/transport"
	"qbism/internal/volume"
)

// QuerySpec is the high-level query a user composes in the DX entry
// fields; the MedicalServer translates it into SQL (Section 5.2's
// "division of labor").
type QuerySpec struct {
	StudyID int    `json:"studyId"`
	Atlas   string `json:"atlas"` // atlas name, e.g. "Talairach"

	// FullStudy requests the entire VOLUME (query Q1).
	FullStudy bool `json:"fullStudy,omitempty"`
	// Structure restricts spatially to a named anatomical structure
	// (queries Q3, Q4).
	Structure string `json:"structure,omitempty"`
	// Box restricts spatially to a rectangular solid, inclusive corners
	// (x0,y0,z0,x1,y1,z1) — query Q2.
	Box *[6]uint32 `json:"box,omitempty"`
	// HasBand restricts by intensity to [BandLo, BandHi], which must
	// match a stored band (queries Q5, Q6).
	HasBand bool `json:"hasBand,omitempty"`
	BandLo  int  `json:"bandLo,omitempty"`
	BandHi  int  `json:"bandHi,omitempty"`
	// Encoding selects the band REGION encoding. Empty resolves to the
	// planner's per-band representation pick (see repr.go) —
	// EncHilbertNaive when no pick was recorded, as in the seed.
	Encoding string `json:"encoding,omitempty"`
}

// Key returns a cache key identifying the query. If the spec cannot be
// marshaled (it cannot today, but Key must never silently collide) it
// falls back to the human-readable label extended with the fields the
// label omits, so distinct specs still get distinct keys.
func (q QuerySpec) Key() string {
	b, err := json.Marshal(q)
	if err != nil {
		return fmt.Sprintf("%s|atlas=%s|enc=%s", q.Label(), q.Atlas, q.Encoding)
	}
	return string(b)
}

// Label names the query in reports.
func (q QuerySpec) Label() string {
	var parts []string
	switch {
	case q.FullStudy:
		parts = append(parts, "entire study")
	}
	if q.Box != nil {
		parts = append(parts, fmt.Sprintf("box (%d,%d,%d)-(%d,%d,%d)",
			q.Box[0], q.Box[1], q.Box[2], q.Box[3], q.Box[4], q.Box[5]))
	}
	if q.Structure != "" {
		parts = append(parts, q.Structure)
	}
	if q.HasBand {
		parts = append(parts, fmt.Sprintf("band %d-%d", q.BandLo, q.BandHi))
	}
	if len(parts) == 0 {
		parts = append(parts, "empty spec")
	}
	return fmt.Sprintf("study %d: %s", q.StudyID, strings.Join(parts, " in "))
}

// QueryMeta is the server-side response header: atlas coordinate-space
// and patient information from the first SQL query (needed for
// rendering and annotation), plus server-side measurement counters.
type QueryMeta struct {
	N         int     `json:"n"`
	DX        float64 `json:"dx"`
	DY        float64 `json:"dy"`
	DZ        float64 `json:"dz"`
	AtlasID   int     `json:"atlasId"`
	Patient   string  `json:"patient"`
	PatientID int     `json:"patientId"`
	Date      string  `json:"date"`

	DBCPUNanos int64  `json:"dbCpuNanos"` // measured handler CPU (wall) time
	LFMPages   uint64 `json:"lfmPages"`   // 4 KB device pages read during the query
	LFMReads   uint64 `json:"lfmReads"`   // LFM read operations (seek-count proxy)
	// CacheHits/CacheMisses are the LFM page-cache counters for this
	// query (zero when the cache is disabled). With the cache on,
	// LFMPages counts only device transfers (misses), so LFMPages +
	// CacheHits ≈ the unbuffered protocol's page count.
	CacheHits   uint64 `json:"cacheHits,omitempty"`
	CacheMisses uint64 `json:"cacheMisses,omitempty"`

	// Concurrency note: these counters are deltas of the shared
	// lfm.Stats around this query's handler. They are exact when queries
	// run serially (every measured experiment does); under the parallel
	// executor concurrent queries' I/O interleaves into each other's
	// deltas, so per-query counters become indicative, not exact.

	// Degraded is set when the server answered through a slow fallback
	// path — e.g. the intensityBand REGION was missing or failed its
	// checksum, so the band was recomputed from the stored VOLUME. The
	// result is still exact; Warning says what happened.
	Degraded bool   `json:"degraded,omitempty"`
	Warning  string `json:"warning,omitempty"`
}

// medicalQueryMethod is the RPC method name on the link.
const medicalQueryMethod = "medicalQuery"

// QueryMethod is the wire method name a raw Transport caller uses to
// reach the MedicalServer — the same name RunQuery dispatches on.
const QueryMethod = medicalQueryMethod

// EncodeQueryRequest builds the wire request body for QueryMethod from
// a spec: the framed spec JSON, exactly what RunQuery sends. Load
// generators and external clients use this to drive a daemon through a
// bare Transport without a System on their side.
func EncodeQueryRequest(spec QuerySpec) ([]byte, error) {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	return encodeFrame(specJSON, nil), nil
}

// DecodeQueryResponse splits a QueryMethod response into its meta
// header and DataRegion blob — the inverse of what the MedicalServer
// sends, with the same typed frame errors RunQuery's validation sees.
func DecodeQueryResponse(resp []byte) (*QueryMeta, []byte, error) {
	return splitResponse(resp)
}

// registerMedicalServer installs the MedicalServer RPC handler on the
// simulated link. The same handler body backs ServeRPC, so the daemon
// and the local transport dispatch into identical server code.
func (s *System) registerMedicalServer() {
	s.Link.RegisterSpan(medicalQueryMethod, s.handleMedicalQuery)
}

// ServeRPC is the System's transport.Handler: it dispatches a framed
// RPC by method name. This is the server side of the transport seam —
// qbismd serves it over TCP, transport.Local dispatches into it
// directly, and the simulated link registers the same handler body.
// Unknown methods fail with transport.ErrUnknownMethod (typed,
// terminal), so a version-skewed client gets a classifiable refusal
// instead of a hang.
func (s *System) ServeRPC(sp *obs.Span, method string, request []byte) ([]byte, error) {
	switch method {
	case medicalQueryMethod:
		return s.handleMedicalQuery(sp, request)
	default:
		return nil, fmt.Errorf("qbism: %w: %q", transport.ErrUnknownMethod, method)
	}
}

// handleMedicalQuery is the MedicalServer RPC handler: it receives a
// framed QuerySpec, generates and executes the SQL, and returns the
// framed response (meta header + DataRegion blob). The frame CRC on
// the way in means a request corrupted in flight fails with a typed,
// retryable error instead of executing a different query.
func (s *System) handleMedicalQuery(sp *obs.Span, request []byte) ([]byte, error) {
	specJSON, _, err := decodeFrame(request)
	if err != nil {
		return nil, fmt.Errorf("qbism: request: %w", err)
	}
	var spec QuerySpec
	if err := json.Unmarshal(specJSON, &spec); err != nil {
		return nil, fmt.Errorf("qbism: bad query spec: %w", err)
	}
	if sp != nil {
		// Traced handlers run one at a time: the LFM has a single
		// span attachment point, and serializing here is what makes
		// the span tree's page accounting reconcile exactly with the
		// lfm.Stats deltas below (the paper's measured protocol is
		// serial anyway).
		s.traceMu.Lock()
		s.LFM.SetSpan(sp)
		defer func() {
			s.LFM.SetSpan(nil)
			s.traceMu.Unlock()
		}()
		sp.SetStr("query", spec.Label())
	}
	start := time.Now()
	stats0 := s.LFM.Stats()

	msp := sp.Child("sql.metadata")
	meta, err := s.runMetadataQuery(msp, spec)
	msp.End()
	if err != nil {
		return nil, err
	}
	dsp := sp.Child("sql.data")
	blob, warning, err := s.runDataQuery(dsp, spec)
	dsp.End()
	if err != nil {
		return nil, err
	}
	if warning != "" {
		meta.Degraded = true
		meta.Warning = warning
		// Degradations must be countable: one counter bump and one
		// span annotation per degraded answer.
		s.Metrics.Counter("qbism_degraded_total").Inc()
		sp.SetStr("degraded", warning)
	}

	meta.DBCPUNanos = time.Since(start).Nanoseconds()
	delta := s.LFM.Stats().Sub(stats0)
	meta.LFMPages = delta.PageReads
	meta.LFMReads = delta.Reads
	meta.CacheHits = delta.CacheHits
	meta.CacheMisses = delta.CacheMisses
	sp.SetInt("lfm.pages", int64(delta.PageReads))
	sp.SetInt("lfm.reads", int64(delta.Reads))
	header, err := json.Marshal(meta)
	if err != nil {
		return nil, err
	}
	return encodeFrame(header, blob), nil
}

// querySingle streams a generated SELECT through the iterator API and
// returns its first row plus the number of rows seen (counting stops at
// two — one row too many is as wrong as a thousand, and stopping early
// keeps the executor from materializing a mistaken cross product).
// The returned row remains valid after the iterator is closed. The
// statement is traced under sp (nil = untraced).
func (s *System) querySingle(sp *obs.Span, sql string, args ...sdb.Value) (row []sdb.Value, n int, err error) {
	rows, err := s.DB.QuerySpan(sp, sql, args...)
	if err != nil {
		return nil, 0, err
	}
	defer rows.Close()
	for rows.Next() {
		if n == 0 {
			row = rows.Row()
		}
		n++
		if n > 1 {
			break
		}
	}
	return row, n, rows.Err()
}

// runMetadataQuery executes the paper's first §3.4 query: verify the
// warped study exists and fetch atlas space and patient information.
// User-provided strings travel as bind parameters, never spliced text.
func (s *System) runMetadataQuery(sp *obs.Span, spec QuerySpec) (*QueryMeta, error) {
	row, n, err := s.querySingle(sp, `
select a.n, a.x0, a.y0, a.z0, a.dx, a.dy, a.dz,
       a.atlasId, p.name, p.patientId, rv.date
from   atlas a, rawVolume rv,
       warpedVolume wv, patient p
where  a.atlasId = wv.atlasId and
       wv.studyId = rv.studyId and
       rv.patientId = p.patientId and
       rv.studyId = ? and a.atlasName = ?`,
		sdb.Int(int64(spec.StudyID)), sdb.Str(spec.Atlas))
	if err != nil {
		return nil, err
	}
	if n != 1 {
		return nil, fmt.Errorf("qbism: no warped study %d in atlas %q", spec.StudyID, spec.Atlas)
	}
	return &QueryMeta{
		N: int(row[0].I), DX: row[4].F, DY: row[5].F, DZ: row[6].F,
		AtlasID: int(row[7].I), Patient: row[8].S, PatientID: int(row[9].I), Date: row[10].S,
	}, nil
}

// dataQuerySQL translates a QuerySpec into the second §3.4 SQL query
// plus its bind values. The generated text mirrors the paper: a call to
// extractVoxels() with, for mixed queries, intersection() nested inside
// and additional joins. Every user-influenced value — study, band
// bounds, encoding, structure and atlas names — binds through `?`
// placeholders, so quote characters in a structure name are data.
func dataQuerySQL(spec QuerySpec) (string, []sdb.Value, error) {
	encoding := spec.Encoding
	if encoding == "" {
		encoding = EncHilbertNaive
	}
	study := sdb.Int(int64(spec.StudyID))
	switch {
	case spec.FullStudy:
		return `
select fullVolume(wv.data)
from   warpedVolume wv
where  wv.studyId = ?`, []sdb.Value{study}, nil

	case spec.Box != nil && !spec.HasBand && spec.Structure == "":
		b := spec.Box
		return `
select extractVoxels(wv.data, boxRegion(?, ?, ?, ?, ?, ?))
from   warpedVolume wv
where  wv.studyId = ?`, []sdb.Value{
				sdb.Int(int64(b[0])), sdb.Int(int64(b[1])), sdb.Int(int64(b[2])),
				sdb.Int(int64(b[3])), sdb.Int(int64(b[4])), sdb.Int(int64(b[5])),
				study}, nil

	case spec.Structure != "" && !spec.HasBand:
		return `
select extractVoxels(wv.data, as.region)
from   warpedVolume wv, atlasStructure as, neuralStructure ns
where  wv.studyId = ? and
       wv.atlasId = as.atlasId and
       as.structureId = ns.structureId and
       ns.structureName = ?`, []sdb.Value{study, sdb.Str(spec.Structure)}, nil

	case spec.HasBand && spec.Structure == "":
		return `
select extractVoxels(wv.data, ib.region)
from   warpedVolume wv, intensityBand ib
where  wv.studyId = ? and
       ib.studyId = wv.studyId and ib.atlasId = wv.atlasId and
       ib.lo = ? and ib.hi = ? and ib.encoding = ?`, []sdb.Value{
				study, sdb.Int(int64(spec.BandLo)), sdb.Int(int64(spec.BandHi)),
				sdb.Str(encoding)}, nil

	case spec.HasBand && spec.Structure != "":
		// Mixed query: intersection() in the select list, extra joins.
		return `
select extractVoxels(wv.data, intersection(ib.region, as.region))
from   warpedVolume wv, intensityBand ib, atlasStructure as, neuralStructure ns
where  wv.studyId = ? and
       ib.studyId = wv.studyId and ib.atlasId = wv.atlasId and
       ib.lo = ? and ib.hi = ? and ib.encoding = ? and
       as.atlasId = wv.atlasId and
       as.structureId = ns.structureId and
       ns.structureName = ?`, []sdb.Value{
				study, sdb.Int(int64(spec.BandLo)), sdb.Int(int64(spec.BandHi)),
				sdb.Str(encoding), sdb.Str(spec.Structure)}, nil

	default:
		return "", nil, fmt.Errorf("qbism: query spec selects nothing (set FullStudy, Box, Structure, or a band)")
	}
}

// runDataQuery executes the second §3.4 query through the streaming
// iterator, returning the marshaled DataRegion. Because the planner
// places extractVoxels() in the projection above every pushed filter
// and join, the expensive long-field read only happens for rows that
// survived the WHERE clause — and the iterator evaluates it lazily,
// one row at a time, rather than materializing a result set first.
//
// Band queries degrade gracefully: when the stored intensityBand REGION
// is missing, unreadable, or fails its checksum, the band is recomputed
// from the stored VOLUME (the slow path — a full-volume scan, roughly
// Q1's I/O cost) and the returned warning marks the answer Degraded.
// The voxel bytes are identical to what the fast path would return.
// With streaming, a checksum/read fault surfaces from the row iterator
// mid-drain (rows.Err()), not from Exec — querySingle folds both into
// its error return, so the fallback conditions are unchanged.
func (s *System) runDataQuery(sp *obs.Span, spec QuerySpec) (blob []byte, warning string, err error) {
	// An unspecified band encoding resolves to the planner's per-REGION
	// representation pick before SQL generation, so the generated query
	// binds a concrete encoding label — the SQL itself stays
	// representation-agnostic.
	if spec.HasBand && spec.Encoding == "" {
		spec.Encoding = s.bandEncoding(spec.StudyID, spec.BandLo, spec.BandHi)
	}
	sql, args, err := dataQuerySQL(spec)
	if err != nil {
		return nil, "", err
	}
	row, n, err := s.querySingle(sp, sql, args...)
	if spec.HasBand {
		switch {
		case err != nil && (errors.Is(err, lfm.ErrChecksum) || errors.Is(err, lfm.ErrReadFault)):
			// The stored band REGION (or a joined region) is unreadable.
			return s.bandSlowPath(sp, spec, fmt.Sprintf(
				"stored intensityBand [%d,%d] unreadable (%v); recomputed from VOLUME", spec.BandLo, spec.BandHi, err))
		case err == nil && n == 0:
			// No matching intensityBand row — the band "index" is missing
			// for this [lo,hi]; recompute rather than fail.
			return s.bandSlowPath(sp, spec, fmt.Sprintf(
				"no stored intensityBand [%d,%d]; recomputed from VOLUME", spec.BandLo, spec.BandHi))
		}
	}
	if err != nil {
		return nil, "", err
	}
	if n != 1 || len(row) != 1 {
		return nil, "", fmt.Errorf("qbism: data query returned %d rows (spec %s)", n, spec.Label())
	}
	v := row[0]
	if v.T != sdb.TBytes {
		return nil, "", fmt.Errorf("qbism: data query returned %v, want DATA_REGION bytes", v.T)
	}
	return v.Y, "", nil
}

// bandSlowPath recomputes a band query from first principles when the
// stored intensityBand REGION is unavailable. A pure band query must
// scan every voxel (band membership is a property of the whole VOLUME),
// so it reads the full field and rebuilds the band REGION. A mixed
// band+structure query only needs the structure's voxels: it extracts
// the structure REGION run-pruned (gap-coalesced page I/O, the same
// plan extractVoxels uses) and filters the extracted values to
// [BandLo, BandHi] — band ∩ structure exactly, at structure-footprint
// I/O cost instead of a full-volume read. Both paths produce results
// byte-identical to the intensityBand fast path: the stored band
// REGIONs were built by exactly this scan at load time, and both
// Filter and intersection() yield the same canonical run list for the
// same voxel set.
func (s *System) bandSlowPath(parent *obs.Span, spec QuerySpec, warning string) ([]byte, string, error) {
	if spec.BandLo < 0 || spec.BandHi > 255 || spec.BandLo > spec.BandHi {
		return nil, "", fmt.Errorf("qbism: band [%d,%d] outside the 0-255 intensity range", spec.BandLo, spec.BandHi)
	}
	// The degradation is a traceable event of its own: everything the
	// fallback does nests under a "band.fallback" span carrying the
	// reason, so a trace shows *why* a band query cost Q1-like I/O.
	sp := parent.Child("band.fallback")
	defer sp.End()
	sp.SetStr("reason", warning)
	row, n, err := s.querySingle(sp, `
select wv.data
from   warpedVolume wv, atlas a
where  wv.studyId = ? and wv.atlasId = a.atlasId and a.atlasName = ?`,
		sdb.Int(int64(spec.StudyID)), sdb.Str(spec.Atlas))
	if err != nil {
		return nil, "", err
	}
	if n != 1 {
		return nil, "", fmt.Errorf("qbism: no warped study %d in atlas %q", spec.StudyID, spec.Atlas)
	}
	volHandle := row[0].L

	var d *volume.DataRegion
	if spec.Structure != "" {
		srow, sn, err := s.querySingle(sp, `
select as.region
from   atlasStructure as, neuralStructure ns, atlas a
where  a.atlasName = ? and as.atlasId = a.atlasId and
       as.structureId = ns.structureId and ns.structureName = ?`,
			sdb.Str(spec.Atlas), sdb.Str(spec.Structure))
		if err != nil {
			return nil, "", err
		}
		if sn != 1 {
			return nil, "", fmt.Errorf("qbism: no structure %q in atlas %q", spec.Structure, spec.Atlas)
		}
		sr, err := regionFromValue(s.DB, srow[0])
		if err != nil {
			return nil, "", fmt.Errorf("qbism: band slow path: %w", err)
		}
		if sr.Curve().Kind() != s.Curve.Kind() {
			if sr, err = sr.Recode(s.Curve); err != nil {
				return nil, "", err
			}
		}
		sd, err := ExtractStoredOpts(s.LFM, volHandle, sr, s.extractOpts())
		if err != nil {
			return nil, "", fmt.Errorf("qbism: band slow path: %w", err)
		}
		if d, err = sd.Filter(uint8(spec.BandLo), uint8(spec.BandHi)); err != nil {
			return nil, "", err
		}
	} else {
		volBytes, err := s.LFM.Read(volHandle)
		if err != nil {
			return nil, "", fmt.Errorf("qbism: band slow path: %w", err)
		}
		vol, err := volume.New(s.Curve, volBytes)
		if err != nil {
			return nil, "", err
		}
		r, err := vol.Band(uint8(spec.BandLo), uint8(spec.BandHi))
		if err != nil {
			return nil, "", err
		}
		if d, err = volume.Extract(vol, r); err != nil {
			return nil, "", err
		}
	}
	blob, err := MarshalDataRegion(d, s.Cfg.Method)
	if err != nil {
		return nil, "", err
	}
	return blob, warning, nil
}
