package qbism

import (
	"fmt"
	"sort"

	"qbism/internal/costmodel"
	"qbism/internal/region"
	"qbism/internal/rencode"
	"qbism/internal/volume"
)

// Per-REGION representation selection (Config.Rencode). Every band is
// always stored at least as h-naive runs — degradation paths and
// explicit-encoding queries depend on that row — and, in auto mode,
// additionally as a k³-tree. What the planner chooses is which of the
// stored rows a band query with no explicit Encoding resolves to: the
// costmodel.ReprPolicy pick from the two encoded sizes and the probe
// fraction. The pick is a pure function of the band's content (and,
// after AdaptBandRepr, of the observed workload), so replica nodes and
// the unsharded control resolve identically — the cluster's
// byte-identity contract extends to representation choice.

// Rencode modes beyond a forced rencode method name.
const (
	// RencodeAuto stores runs and k³-tree rows per band and lets the
	// policy pick the default representation per REGION.
	RencodeAuto = "auto"
	// RencodeRuns reproduces the seed: run-list codecs only.
	RencodeRuns = "runs"
)

// bandKey identifies one stored intensity band.
type bandKey struct {
	study  int
	lo, hi int
}

// validateRencode rejects unknown Config.Rencode values early, at
// System construction, rather than at first band load.
func validateRencode(mode string) error {
	if mode == RencodeAuto || mode == RencodeRuns {
		return nil
	}
	if _, ok := rencode.MethodByName(mode); ok {
		return nil
	}
	return fmt.Errorf("qbism: unknown Rencode mode %q (want %q, %q, or a rencode method name)",
		mode, RencodeAuto, RencodeRuns)
}

// bandEncoding resolves the encoding label a band query with no
// explicit Encoding uses: the recorded planner pick, or the seed
// default when none was recorded (runs mode, or an unknown band).
func (s *System) bandEncoding(study, lo, hi int) string {
	s.reprMu.RLock()
	defer s.reprMu.RUnlock()
	if enc, ok := s.bandRepr[bandKey{study, lo, hi}]; ok {
		return enc
	}
	return EncHilbertNaive
}

func (s *System) setBandRepr(study, lo, hi int, enc string) {
	s.reprMu.Lock()
	s.bandRepr[bandKey{study, lo, hi}] = enc
	s.reprMu.Unlock()
}

// pickBandRepr runs the representation policy for one band: the
// candidates' encoded sizes against the probe fraction. Pure — same
// band bytes and fraction always yield the same label.
func pickBandRepr(b volume.BandSpec, probeFrac float64) (string, error) {
	sizeRuns, err := rencode.EncodedSize(rencode.Naive, b.Region)
	if err != nil {
		return "", err
	}
	sizeK3, err := rencode.EncodedSize(rencode.K3Tree, b.Region)
	if err != nil {
		return "", err
	}
	if costmodel.DefaultReprPolicy().Pick(sizeRuns, sizeK3, probeFrac) == costmodel.ReprK3 {
		return EncK3Tree, nil
	}
	return EncHilbertNaive, nil
}

// loadBandRepr runs at load time after the always-stored h-naive row
// (and any ExtraBandEncodings rows): it stores the representation rows
// the Rencode mode calls for and records which label default queries
// resolve to. In auto mode the k³-tree row is stored for every band —
// row counts stay deterministic; only the resolution varies per REGION.
func (s *System) loadBandRepr(studyID int, b volume.BandSpec) error {
	switch mode := s.Cfg.Rencode; mode {
	case RencodeRuns:
		return nil
	case RencodeAuto:
		if err := s.storeBand(studyID, b, EncK3Tree); err != nil {
			return err
		}
		// No workload has been observed at load time; the policy's
		// ProbeCutoff doubles as the prior probe fraction (see
		// costmodel.DefaultReprPolicy).
		enc, err := pickBandRepr(b, costmodel.DefaultReprPolicy().ProbeCutoff)
		if err != nil {
			return err
		}
		s.setBandRepr(studyID, int(b.Lo), int(b.Hi), enc)
		return nil
	default:
		// Forced method: store its row and resolve defaults to it. The
		// h-naive label is already stored; re-storing under the method's
		// own name keeps resolution uniform ("naive" and "h-naive" rows
		// may then hold identical bytes under different labels).
		if err := s.storeBand(studyID, b, mode); err != nil {
			return err
		}
		s.setBandRepr(studyID, int(b.Lo), int(b.Hi), mode)
		return nil
	}
}

// encodeStructure encodes an atlas structure REGION per the Rencode
// mode: auto keeps whichever of Cfg.Method and the k³-tree is smaller
// (structure probes — CONTAINS, point membership — then run on the
// compressed bytes), runs keeps Cfg.Method, a method name forces that
// method. The stored bytes are self-describing (rencode header), so no
// catalog column records the choice.
func (s *System) encodeStructure(r *region.Region) ([]byte, error) {
	switch mode := s.Cfg.Rencode; mode {
	case RencodeRuns:
		return rencode.Encode(s.Cfg.Method, r)
	case RencodeAuto:
		base, err := rencode.Encode(s.Cfg.Method, r)
		if err != nil {
			return nil, err
		}
		sizeK3, err := rencode.EncodedSize(rencode.K3Tree, r)
		if err != nil {
			return nil, err
		}
		if costmodel.DefaultReprPolicy().Pick(len(base), sizeK3,
			costmodel.DefaultReprPolicy().ProbeCutoff) == costmodel.ReprK3 {
			return rencode.Encode(rencode.K3Tree, r)
		}
		return base, nil
	default:
		m, _ := rencode.MethodByName(mode) // validated in New
		return rencode.Encode(m, r)
	}
}

// BandReprCounts reports how many stored bands currently resolve to
// each encoding label — the planner's representation census, surfaced
// by the CLI and the perfbench report.
func (s *System) BandReprCounts() map[string]int {
	out := make(map[string]int)
	s.reprMu.RLock()
	defer s.reprMu.RUnlock()
	for _, enc := range s.bandRepr {
		out[enc]++
	}
	return out
}

// AdaptBandRepr re-runs the representation pick for every loaded band
// using the probe fraction the system actually observed — the
// qbism_region_probe_total / qbism_region_decode_total counters the
// spatial UDFs maintain — instead of the load-time prior. It returns
// how many bands' default representation changed. Only auto mode
// adapts; runs and forced modes are pinned by construction. Both rows
// are already stored, so adaptation only rewrites the resolution map —
// no data movement, and in-flight queries see either the old or the
// new pick, both of which answer byte-identically.
func (s *System) AdaptBandRepr() (int, error) {
	if s.Cfg.Rencode != RencodeAuto {
		return 0, nil
	}
	frac := costmodel.DefaultReprPolicy().ProbeCutoff
	if s.Metrics != nil {
		probes := s.Metrics.Counter(metricRegionProbes).Value()
		decodes := s.Metrics.Counter(metricRegionDecodes).Value()
		if total := probes + decodes; total > 0 {
			frac = float64(probes) / float64(total)
		}
	}
	// Studies iterate in sorted order so the changed count and the
	// map-write order are reproducible run to run.
	studies := make([]int, 0, len(s.BandRegions))
	for id := range s.BandRegions {
		studies = append(studies, id)
	}
	sort.Ints(studies)
	changed := 0
	for _, studyID := range studies {
		for _, b := range s.BandRegions[studyID] {
			enc, err := pickBandRepr(b, frac)
			if err != nil {
				return changed, err
			}
			if s.bandEncoding(studyID, int(b.Lo), int(b.Hi)) != enc {
				s.setBandRepr(studyID, int(b.Lo), int(b.Hi), enc)
				changed++
			}
		}
	}
	return changed, nil
}
