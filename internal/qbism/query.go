package qbism

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"qbism/internal/cluster"
	"qbism/internal/costmodel"
	"qbism/internal/dx"
	"qbism/internal/obs"
	"qbism/internal/transport"
	"qbism/internal/volume"
)

// QueryTiming is one row of Table 3: result size, I/O, and the
// per-component time breakdown. Measured* fields are this machine's
// actual wall times; Sim* fields price the counted work with the
// calibrated 1993 cost model so rows are comparable with the paper's.
type QueryTiming struct {
	Label  string
	HRuns  int
	Voxels uint64

	LFMPages uint64 // LFM disk I/Os (4 KB pages)

	DBMeasured     time.Duration // server-side handler time on this machine
	DBSimReal      time.Duration // simulated Starburst/MedicalServer real time
	NetMessages    uint64
	NetSim         time.Duration
	ImportMeasured time.Duration
	ImportSim      time.Duration
	RenderMeasured time.Duration
	RenderSim      time.Duration
	RetrySim       time.Duration // simulated backoff waits across retries
	OtherSim       time.Duration
	TotalSim       time.Duration
	TotalMeasured  time.Duration
}

// QueryResult is a completed end-to-end query.
type QueryResult struct {
	Spec   QuerySpec
	Meta   QueryMeta
	Data   *volume.DataRegion
	Field  *dx.Field
	Image  *dx.Image
	Timing QueryTiming
	// Retry reports the query's resilience history: attempts, retries,
	// and total simulated backoff.
	Retry RetryStats
	// Shard, set only for queries served through a ClusterSystem,
	// reports which shard and node answered and what failover work the
	// cluster did on the way.
	Shard *cluster.ReadInfo
	// Trace is the query's span tree (nil unless Config.Trace): the RPC
	// round trips, server-side SQL phases and operators, per-handle LFM
	// I/O, and the DX import/render stages.
	Trace *obs.Span
}

// frontEnd is the client-side half of a query — the DX cache, the cost
// model pricing the work, and the observability sinks. Both the
// single-node System and the sharded ClusterSystem finish queries
// through the same frontEnd, so timing, metrics, and slow-log behavior
// are identical regardless of how the response was fetched.
type frontEnd struct {
	cache      *dx.Cache
	model      costmodel.Model
	metrics    *obs.Registry
	slowLog    *obs.SlowLog
	slowThresh time.Duration
}

// fe returns the System's frontEnd view.
func (s *System) fe() frontEnd {
	return frontEnd{
		cache:      s.Cache,
		model:      s.Model,
		metrics:    s.Metrics,
		slowLog:    s.SlowLog,
		slowThresh: s.Cfg.SlowLogThreshold,
	}
}

// RunQuery executes a query end to end under the paper's measurement
// protocol: the DX cache is flushed first, then the spec crosses the
// network to the MedicalServer, SQL runs in the database, the result
// crosses back, DX imports it and renders an image. Every component's
// work is counted and timed.
//
// The network exchange is resilient: both directions are CRC-framed so
// corruption and truncation surface as typed errors, and transient
// failures (drops, timeouts, corrupt frames, device read faults) are
// retried per s.Retry with capped exponential backoff and deterministic
// jitter. Backoff is simulated time — no real sleeping — accounted in
// Timing.RetrySim.
func (s *System) RunQuery(spec QuerySpec) (*QueryResult, error) {
	return s.runQuerySpan(nil, spec)
}

// runQuerySpan is RunQuery with an optional parent span (the batch
// root, for RunQueries). With tracing enabled it produces the query's
// span tree, feeds the metrics registry, and captures slow queries.
func (s *System) runQuerySpan(parent *obs.Span, spec QuerySpec) (*QueryResult, error) {
	s.Cache.Flush() // §6.1: "we flushed the DX cache before each run"
	totalStart := time.Now()

	var root *obs.Span
	if parent != nil {
		root = parent.Child("query")
	} else {
		root = s.Tracer.Start("query")
	}
	root.SetStr("spec", spec.Label())

	specJSON, err := json.Marshal(spec)
	if err != nil {
		root.End()
		return nil, err
	}
	request := encodeFrame(specJSON, nil)

	// The exchange rides the transport seam: CallRetry carries the
	// capped-exponential, deterministically jittered schedule whatever
	// flavor s.Transport is — the default simulated link, or a TCP
	// connection to a live daemon. Response validation runs inside the
	// loop, so a reply corrupted past the link layer's own checks is
	// retried exactly like a failed call.
	var meta *QueryMeta
	var blob []byte
	net0 := s.Transport.Stats()
	_, retry, err := transport.CallRetry(s.Transport, root, medicalQueryMethod, request, s.Retry, spec.Key(),
		func(resp []byte) error {
			m, b, verr := splitResponse(resp)
			if verr != nil {
				return verr
			}
			meta, blob = m, b
			return nil
		})
	if err != nil {
		return nil, s.fe().fail(root, retry, fmt.Errorf("qbism: query failed after %d attempt(s): %w", retry.Attempts, err))
	}
	netDelta := s.Transport.Stats().Sub(net0)

	return s.fe().finish(root, spec, meta, blob, retry, netDelta.Messages, netDelta.Latency, totalStart)
}

// finish performs the client-side DX stages — import, render, cache —
// prices the work with the cost model, and feeds the observability
// sinks. netMessages/netSim describe the network exchange however it
// was carried (single link or cluster read).
func (fe frontEnd) finish(root *obs.Span, spec QuerySpec, meta *QueryMeta, blob []byte, retry RetryStats, netMessages uint64, netSim time.Duration, totalStart time.Time) (*QueryResult, error) {
	importStart := time.Now()
	importSp := root.Child("dx.import")
	data, err := UnmarshalDataRegion(blob)
	if err != nil {
		importSp.End()
		return nil, fe.fail(root, retry, err)
	}
	field, importStats, err := dx.ImportVolume(data)
	importSp.SetInt("voxels", int64(importStats.Voxels))
	importSp.SetInt("runs", int64(importStats.Runs))
	importSp.End()
	if err != nil {
		return nil, fe.fail(root, retry, err)
	}
	importDur := time.Since(importStart)

	renderStart := time.Now()
	renderSp := root.Child("dx.render")
	img, err := field.Render(dx.RenderOpts{Axis: 2, Mode: dx.MIP})
	renderSp.End()
	if err != nil {
		return nil, fe.fail(root, retry, err)
	}
	renderDur := time.Since(renderStart)
	fe.cache.Put(spec.Key(), field)

	t := QueryTiming{
		Label:          spec.Label(),
		HRuns:          data.Region.NumRuns(),
		Voxels:         data.Region.NumVoxels(),
		LFMPages:       meta.LFMPages,
		DBMeasured:     time.Duration(meta.DBCPUNanos),
		DBSimReal:      fe.model.StarburstTime(time.Duration(meta.DBCPUNanos), meta.LFMPages),
		NetMessages:    netMessages,
		NetSim:         netSim,
		ImportMeasured: importDur,
		ImportSim:      fe.model.ImportTime(importStats.Voxels, importStats.Runs),
		RenderMeasured: renderDur,
		RenderSim:      fe.model.RenderTime(importStats.Voxels),
		RetrySim:       retry.BackoffSim,
		OtherSim:       fe.model.OtherTime,
	}
	t.TotalSim = t.DBSimReal + t.NetSim + t.ImportSim + t.RenderSim + t.RetrySim + t.OtherSim
	t.TotalMeasured = time.Since(totalStart)

	root.SetInt("attempts", int64(retry.Attempts))
	root.SetInt("retries", int64(retry.Retries))
	root.SetInt("lfm.pages", int64(meta.LFMPages))
	root.SetInt("voxels", int64(t.Voxels))
	if meta.Degraded {
		root.SetStr("degraded", meta.Warning)
	}
	root.End()
	fe.observe(spec, t, retry, root)

	return &QueryResult{
		Spec: spec, Meta: *meta, Data: data, Field: field, Image: img, Timing: t, Retry: retry,
		Trace: root,
	}, nil
}

// fail finishes a query's observability on the error path: the root
// span is annotated and ended, and the error counters bump.
func (fe frontEnd) fail(root *obs.Span, retry RetryStats, err error) error {
	root.SetStr("error", err.Error())
	root.SetInt("attempts", int64(retry.Attempts))
	root.SetInt("retries", int64(retry.Retries))
	root.End()
	fe.metrics.Counter("qbism_queries_total").Inc()
	fe.metrics.Counter("qbism_query_errors_total").Inc()
	fe.metrics.Counter("qbism_retries_total").Add(int64(retry.Retries))
	return err
}

// observe feeds the metrics registry and, when the query's measured
// latency reaches the slow-log threshold, captures the full span tree
// plus the executed plan into the slow-query ring.
func (fe frontEnd) observe(spec QuerySpec, t QueryTiming, retry RetryStats, root *obs.Span) {
	fe.metrics.Counter("qbism_queries_total").Inc()
	fe.metrics.Counter("qbism_retries_total").Add(int64(retry.Retries))
	fe.metrics.Histogram("qbism_query_latency_seconds", obs.LatencyBuckets).
		Observe(t.TotalMeasured.Seconds())
	fe.metrics.Histogram("qbism_query_lfm_pages", obs.PageBuckets).
		Observe(float64(t.LFMPages))
	if fe.slowLog != nil && root != nil && t.TotalMeasured >= fe.slowThresh {
		fe.slowLog.Add(obs.SlowEntry{
			Label:   spec.Label(),
			Total:   t.TotalMeasured,
			Tree:    root.RenderString(),
			Explain: explainFromSpan(root),
		})
	}
}

// explainFromSpan reconstructs the EXPLAIN ANALYZE view from a query's
// span tree: the operator spans under each "sql.execute" phase carry
// exactly the counters explainSelect would print, so no re-execution
// (and no extra I/O) is needed for the forensic capture.
func explainFromSpan(root *obs.Span) []string {
	var out []string
	var operators func(sp *obs.Span, depth int)
	operators = func(sp *obs.Span, depth int) {
		in, _ := sp.Int("rowsIn")
		outRows, _ := sp.Int("rowsOut")
		udf, _ := sp.Int("udfCalls")
		pages, _ := sp.Int("lfmPages")
		probe, _ := sp.Int("probeFast")
		out = append(out, fmt.Sprintf("%s%s [in=%d out=%d udf=%d pages=%d probe=%d]",
			strings.Repeat("  ", depth), sp.Name(), in, outRows, udf, pages, probe))
		for _, c := range sp.Children() {
			operators(c, depth+1)
		}
	}
	root.Walk(func(sp *obs.Span, _ int) {
		if sp.Name() != "sql.execute" {
			return
		}
		for _, c := range sp.Children() {
			operators(c, 0)
		}
	})
	return out
}

// RunQueryCached serves the query from the DX cache when possible (the
// interactive path: "the user can quickly review and manipulate the
// results of several recently issued queries without necessitating a
// database reaccess"). On a miss it falls through to RunQuery.
func (s *System) RunQueryCached(spec QuerySpec) (*QueryResult, bool, error) {
	if field, ok := s.Cache.Get(spec.Key()); ok {
		img, err := field.Render(dx.RenderOpts{Axis: 2, Mode: dx.MIP})
		if err != nil {
			return nil, false, err
		}
		return &QueryResult{
			Spec:  spec,
			Data:  field.Data,
			Field: field,
			Image: img,
			Timing: QueryTiming{
				Label:  spec.Label() + " (cached)",
				HRuns:  field.Data.Region.NumRuns(),
				Voxels: field.Data.Region.NumVoxels(),
			},
		}, true, nil
	}
	res, err := s.RunQuery(spec)
	return res, false, err
}

// ExplainSpec renders the physical operator tree for the SQL the
// MedicalServer would generate for spec — the visibility hook for
// where the planner placed each spatial predicate relative to the
// extractVoxels() projection. With analyze set the query actually
// executes and each line carries its runtime counters (rows in/out,
// UDF calls, LFM pages charged to that operator's expressions). Band
// queries are prefixed with a "band repr:" line naming the REGION
// representation the query resolves to and whether the planner picked
// it or the spec forced it.
func (s *System) ExplainSpec(spec QuerySpec, analyze bool) ([]string, error) {
	var lines []string
	if spec.HasBand {
		src := "forced"
		if spec.Encoding == "" {
			spec.Encoding = s.bandEncoding(spec.StudyID, spec.BandLo, spec.BandHi)
			src = "planner-selected"
		}
		lines = append(lines, fmt.Sprintf("band repr: %s (%s)", spec.Encoding, src))
	}
	sql, args, err := dataQuerySQL(spec)
	if err != nil {
		return nil, err
	}
	prefix := "explain "
	if analyze {
		prefix = "explain analyze "
	}
	res, err := s.DB.Exec(prefix+sql, args...)
	if err != nil {
		return nil, err
	}
	for _, row := range res.Rows {
		lines = append(lines, row[0].S)
	}
	return lines, nil
}

// splitResponse validates the response frame and separates the JSON
// meta header from the DataRegion blob. Truncated or corrupted frames
// fail with ErrFrameTruncated/ErrFrameCorrupt — typed, retryable — so
// a damaged reply is never mis-parsed as data.
func splitResponse(resp []byte) (*QueryMeta, []byte, error) {
	header, blob, err := decodeFrame(resp)
	if err != nil {
		return nil, nil, fmt.Errorf("qbism: response: %w", err)
	}
	var meta QueryMeta
	if err := json.Unmarshal(header, &meta); err != nil {
		return nil, nil, fmt.Errorf("qbism: bad response header: %w", err)
	}
	return &meta, blob, nil
}
