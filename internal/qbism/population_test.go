package qbism

import (
	"testing"

	"qbism/internal/feature"
	"qbism/internal/region"
	"qbism/internal/sfc"
)

func TestFileBackedSystem(t *testing.T) {
	// The whole system runs against a real on-disk device, with the same
	// query results and page accounting as the in-memory simulation.
	s, err := New(Config{
		Bits: 4, NumPET: 1, NumMRI: 0, Seed: 3, SmallStudies: true,
		DevicePath: t.TempDir() + "/qbism.dev",
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunQuery(QuerySpec{StudyID: 1, Atlas: "Talairach", Structure: "ntal"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.LFMPages == 0 || res.Data.NumVoxels() == 0 {
		t.Errorf("file-backed query: %+v", res.Timing)
	}
	if _, err := New(Config{Bits: 4, SmallStudies: true, DevicePath: "/no/such/dir/x.dev"}); err == nil {
		t.Error("bad device path accepted")
	}
}

func TestBuildActivityIndex(t *testing.T) {
	s := testSystem(t)
	idx, err := s.BuildActivityIndex(96)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() == 0 {
		t.Fatal("no band regions indexed")
	}
	// A query box covering the whole grid must return every indexed entry.
	side := uint32(s.Side())
	all, _ := idx.StudiesNear(region.Box{Min: sfc.Pt(0, 0, 0), Max: sfc.Pt(side-1, side-1, side-1)})
	if len(all) != idx.Len() {
		t.Errorf("whole-grid query returned %d of %d entries", len(all), idx.Len())
	}
	// Results agree with a brute-force scan over the band regions.
	q := region.Box{Min: sfc.Pt(side/4, side/4, side/4), Max: sfc.Pt(side/2, side/2, side/2)}
	got, st := idx.StudiesNear(q)
	want := 0
	for _, bands := range s.BandRegions {
		for _, b := range bands {
			if b.Lo < 96 || b.Region.Empty() {
				continue
			}
			min, max, _ := b.Region.Bounds()
			if min.X <= q.Max.X && q.Min.X <= max.X &&
				min.Y <= q.Max.Y && q.Min.Y <= max.Y &&
				min.Z <= q.Max.Z && q.Min.Z <= max.Z {
				want++
			}
		}
	}
	if len(got) != want {
		t.Errorf("StudiesNear returned %d entries, brute force says %d", len(got), want)
	}
	if st.NodesVisited == 0 {
		t.Error("no index work recorded")
	}
	// Entries carry real metadata.
	for _, e := range got {
		if e.StudyID == 0 || e.Voxels == 0 || e.BandHi <= e.BandLo {
			t.Errorf("bad entry %+v", e)
		}
	}
}

func TestStudyFeatureAndSimilarity(t *testing.T) {
	s := testSystem(t)
	vec, err := s.StudyFeature(1, "ntal")
	if err != nil {
		t.Fatal(err)
	}
	// Histogram fractions sum to 1.
	var sum float64
	for i := 0; i < feature.HistBins; i++ {
		sum += vec[i]
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("histogram sums to %v", sum)
	}
	if _, err := s.StudyFeature(1, "no-such"); err == nil {
		t.Error("unknown structure accepted")
	}
	if _, err := s.StudyFeature(99, "ntal"); err == nil {
		t.Error("unknown study accepted")
	}

	matches, err := s.SimilarStudies(1, "ntal", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("matches = %v", matches)
	}
	for _, m := range matches {
		if m.ID == 1 {
			t.Error("probe study returned as its own match")
		}
	}
	// Sorted ascending by distance.
	if matches[0].Distance > matches[1].Distance {
		t.Error("matches not sorted")
	}
	// PET studies should be more similar to each other than to the MRI
	// (study 4 in the test system): the nearest neighbour of PET study 1
	// must be another PET.
	if matches[0].ID == 4 {
		t.Errorf("nearest neighbour of a PET study is the MRI: %v", matches)
	}
	if _, err := s.SimilarStudies(99, "ntal", 1); err == nil {
		t.Error("unknown probe study accepted")
	}
}

func TestStudyTransactionsAndMining(t *testing.T) {
	s := testSystem(t)
	txns, err := s.StudyTransactions(128, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != len(s.Studies) {
		t.Fatalf("transactions = %d, want %d", len(txns), len(s.Studies))
	}
	// Every transaction carries modality and demographics.
	for _, tx := range txns {
		hasModality, hasSex, hasAge := false, false, false
		for _, it := range tx.Items {
			switch {
			case len(it) > 9 && it[:9] == "modality:":
				hasModality = true
			case len(it) > 4 && it[:4] == "sex:":
				hasSex = true
			case len(it) > 4 && it[:4] == "age:":
				hasAge = true
			}
		}
		if !hasModality || !hasSex || !hasAge {
			t.Errorf("transaction %d missing demographics: %v", tx.ID, tx.Items)
		}
	}
	// Mining runs end to end; with 4 studies and minSupport 2 there are
	// frequent sets (at least the modality item for the 3 PETs).
	rules, err := s.MineAssociations(128, 0.01, 2, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Confidence < 0.6 {
			t.Errorf("rule below confidence threshold: %v", r)
		}
	}
	if _, err := s.MineAssociations(128, 0.01, 0, 0.5); err == nil {
		t.Error("bad minSupport accepted")
	}
}
