package qbism

// Population-scale capabilities — the three future directions of the
// paper's Section 7, built on the loaded database:
//
//  1. spatial indexing over the population's activity regions (spindex),
//  2. association-rule mining over study features (mining),
//  3. feature-vector similarity search between studies (feature).

import (
	"fmt"

	"qbism/internal/feature"
	"qbism/internal/mining"
	"qbism/internal/region"
	"qbism/internal/spindex"
	"qbism/internal/volume"
)

// ActivityIndex is a spatial index over the bounding boxes of every
// study's high-activity band REGIONs, supporting "which studies show
// activity near here?" without opening each study's REGIONs.
type ActivityIndex struct {
	tree *spindex.RTree
	// entries maps R-tree ids back to (study, band-low) pairs.
	entries map[int64]ActivityEntry
}

// ActivityEntry identifies one indexed band region.
type ActivityEntry struct {
	StudyID int
	BandLo  uint8
	BandHi  uint8
	Voxels  uint64
}

// BuildActivityIndex indexes the bounding boxes of all band REGIONs
// with intensity lower bound >= minIntensity across every study.
func (s *System) BuildActivityIndex(minIntensity uint8) (*ActivityIndex, error) {
	idx := &ActivityIndex{
		tree:    spindex.New(),
		entries: make(map[int64]ActivityEntry),
	}
	next := int64(1)
	for studyID, bands := range s.BandRegions {
		for _, b := range bands {
			if b.Lo < minIntensity || b.Region.Empty() {
				continue
			}
			min, max, ok := b.Region.Bounds()
			if !ok {
				continue
			}
			id := next
			next++
			idx.entries[id] = ActivityEntry{
				StudyID: studyID, BandLo: b.Lo, BandHi: b.Hi, Voxels: b.Region.NumVoxels(),
			}
			if err := idx.tree.Insert(spindex.Entry{
				ID: id,
				Box: spindex.Box3{
					MinX: min.X, MinY: min.Y, MinZ: min.Z,
					MaxX: max.X, MaxY: max.Y, MaxZ: max.Z,
				},
			}); err != nil {
				return nil, err
			}
		}
	}
	return idx, nil
}

// Len returns the number of indexed band regions.
func (a *ActivityIndex) Len() int { return a.tree.Len() }

// StudiesNear returns the entries whose activity bounding boxes
// intersect the query box, plus the index work done.
func (a *ActivityIndex) StudiesNear(b region.Box) ([]ActivityEntry, spindex.SearchStats) {
	ids, st := a.tree.Search(spindex.Box3{
		MinX: b.Min.X, MinY: b.Min.Y, MinZ: b.Min.Z,
		MaxX: b.Max.X, MaxY: b.Max.Y, MaxZ: b.Max.Z,
	})
	out := make([]ActivityEntry, 0, len(ids))
	for _, id := range ids {
		out = append(out, a.entries[id])
	}
	return out, st
}

// readStudyVolume loads a study's warped VOLUME from the database.
func (s *System) readStudyVolume(studyID int) (*volume.Volume, error) {
	res, err := s.DB.Exec(fmt.Sprintf(
		`select wv.data from warpedVolume wv where wv.studyId = %d`, studyID))
	if err != nil {
		return nil, err
	}
	if len(res.Rows) != 1 {
		return nil, fmt.Errorf("qbism: study %d has %d warped volumes", studyID, len(res.Rows))
	}
	data, err := s.LFM.Read(res.Rows[0][0].L)
	if err != nil {
		return nil, err
	}
	return volume.New(s.Curve, data)
}

// StudyFeature computes a study's feature vector inside a named
// structure — the feature-extraction half of the paper's similarity
// queries.
func (s *System) StudyFeature(studyID int, structure string) (feature.Vector, error) {
	st, err := s.Atlas.ByName(structure)
	if err != nil {
		return feature.Vector{}, err
	}
	vol, err := s.readStudyVolume(studyID)
	if err != nil {
		return feature.Vector{}, err
	}
	d, err := volume.Extract(vol, st.Region)
	if err != nil {
		return feature.Vector{}, err
	}
	return feature.Extract(d)
}

// SimilarStudies answers "find the studies with intensities inside
// <structure> most similar to study <studyID>": a k-NN query over the
// per-study feature vectors, served by a VP-tree.
func (s *System) SimilarStudies(studyID int, structure string, k int) ([]feature.Match, error) {
	var items []feature.Item
	var query feature.Vector
	found := false
	for _, st := range s.Studies {
		vec, err := s.StudyFeature(st.StudyID, structure)
		if err != nil {
			return nil, err
		}
		if st.StudyID == studyID {
			query = vec
			found = true
			continue // exclude the probe study from its own results
		}
		items = append(items, feature.Item{ID: int64(st.StudyID), Vec: vec})
	}
	if !found {
		return nil, fmt.Errorf("qbism: unknown study %d", studyID)
	}
	tree := feature.Build(items)
	matches, _ := tree.Nearest(query, k)
	return matches, nil
}

// StudyTransactions derives the boolean feature sets for association
// mining: for every study, one transaction containing demographic items
// (modality, sex, age decade) and "high:<structure>" items for each
// structure whose intersection with the study's high-intensity bands
// covers at least minFraction of the structure.
func (s *System) StudyTransactions(highIntensity uint8, minFraction float64) ([]mining.Transaction, error) {
	patients, err := s.DB.Exec(`select patientId, age, sex from patient`)
	if err != nil {
		return nil, err
	}
	demo := make(map[int][]mining.Item)
	for _, row := range patients.Rows {
		pid := int(row[0].I)
		decade := row[1].I / 10 * 10
		demo[pid] = []mining.Item{
			mining.Item(fmt.Sprintf("age:%d+", decade)),
			mining.Item("sex:" + row[2].S),
		}
	}

	var txns []mining.Transaction
	for _, st := range s.Studies {
		items := append([]mining.Item{mining.Item("modality:" + st.Modality.String())},
			demo[st.PatientID]...)
		// Union the high bands, then test each structure.
		high := region.Empty(s.Curve)
		for _, b := range s.BandRegions[st.StudyID] {
			if b.Lo >= highIntensity {
				if high, err = region.Union(high, b.Region); err != nil {
					return nil, err
				}
			}
		}
		for _, structure := range s.Atlas.Structures[3:] { // skip whole brain + hemispheres
			inter, err := region.Intersect(high, structure.Region)
			if err != nil {
				return nil, err
			}
			sv := structure.Region.NumVoxels()
			if sv > 0 && float64(inter.NumVoxels())/float64(sv) >= minFraction {
				items = append(items, mining.Item("high:"+structure.Name))
			}
		}
		txns = append(txns, mining.Transaction{ID: int64(st.StudyID), Items: items})
	}
	return txns, nil
}

// MineAssociations runs the full pipeline: derive transactions and mine
// rules — the paper's "find PET study intensity patterns that are
// associated with any condition in any subpopulation".
func (s *System) MineAssociations(highIntensity uint8, minFraction float64, minSupport int, minConfidence float64) ([]mining.Rule, error) {
	txns, err := s.StudyTransactions(highIntensity, minFraction)
	if err != nil {
		return nil, err
	}
	return mining.Rules(txns, minSupport, minConfidence)
}
