package qbism

import (
	"fmt"

	"qbism/internal/region"
	"qbism/internal/rencode"
	"qbism/internal/sdb"
	"qbism/internal/sfc"
	"qbism/internal/volume"
)

// registerSpatialUDFs installs the spatial operators of Section 3.2 (and
// the helpers the MedicalServer's generated SQL uses) as user-defined
// SQL functions, the way the prototype extended Starburst. Each carries
// a relative Cost hint so the planner orders same-level predicates
// cheapest-first: voxel extraction (a long-field read) is priced far
// above region algebra, which is priced above pure geometry like
// boxRegion.
func (s *System) registerSpatialUDFs() error {
	udfs := []*sdb.UDF{
		{
			// INTERSECTION(REGION r1, REGION r2) -> REGION
			Name: "intersection", MinArgs: 2, MaxArgs: 2, Cost: 20,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				return s.regionBinop(db, args, region.Intersect)
			},
		},
		{
			// UNION(r1, r2), mentioned as a straightforward extension.
			Name: "unionRegion", MinArgs: 2, MaxArgs: 2, Cost: 20,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				return s.regionBinop(db, args, region.Union)
			},
		},
		{
			// DIFFERENCE(r1, r2), likewise.
			Name: "differenceRegion", MinArgs: 2, MaxArgs: 2, Cost: 20,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				return s.regionBinop(db, args, region.Difference)
			},
		},
		{
			// CONTAINS(REGION r1, REGION r2) -> BOOLEAN
			Name: "contains", MinArgs: 2, MaxArgs: 2, Cost: 20,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				a, err := regionFromValue(db, args[0])
				if err != nil {
					return sdb.Value{}, err
				}
				b, err := regionFromValue(db, args[1])
				if err != nil {
					return sdb.Value{}, err
				}
				ok, err := region.Contains(a, b)
				if err != nil {
					return sdb.Value{}, err
				}
				return sdb.Bool(ok), nil
			},
		},
		{
			// EXTRACT_DATA(VOLUME v, REGION r) -> DATA_REGION
			Name: "extractVoxels", MinArgs: 2, MaxArgs: 2, Cost: 100,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				if args[0].T != sdb.TLong {
					return sdb.Value{}, fmt.Errorf("extractVoxels: first argument must be a VOLUME long field, got %s", args[0].T)
				}
				r, err := regionFromValue(db, args[1])
				if err != nil {
					return sdb.Value{}, err
				}
				// VOLUMEs are stored in the system's Hilbert order;
				// regions arriving in another order are recoded first.
				if r.Curve().Kind() != s.Curve.Kind() {
					if r, err = r.Recode(s.Curve); err != nil {
						return sdb.Value{}, err
					}
				}
				d, err := ExtractStoredOpts(db.LFM(), args[0].L, r, s.extractOpts())
				if err != nil {
					return sdb.Value{}, err
				}
				blob, err := MarshalDataRegion(d, s.Cfg.Method)
				if err != nil {
					return sdb.Value{}, err
				}
				return sdb.Bytes(blob), nil
			},
		},
		{
			// fullVolume(VOLUME v) -> DATA_REGION over the whole grid
			// (the "flat file" access path of query Q1).
			Name: "fullVolume", MinArgs: 1, MaxArgs: 1, Cost: 100,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				if args[0].T != sdb.TLong {
					return sdb.Value{}, fmt.Errorf("fullVolume: argument must be a VOLUME long field, got %s", args[0].T)
				}
				data, err := db.LFM().Read(args[0].L)
				if err != nil {
					return sdb.Value{}, err
				}
				if uint64(len(data)) != s.Curve.Length() {
					return sdb.Value{}, fmt.Errorf("fullVolume: field has %d bytes, grid needs %d", len(data), s.Curve.Length())
				}
				d := &volume.DataRegion{Region: region.Full(s.Curve), Values: data}
				blob, err := MarshalDataRegion(d, s.Cfg.Method)
				if err != nil {
					return sdb.Value{}, err
				}
				return sdb.Bytes(blob), nil
			},
		},
		{
			// boxRegion(x0,y0,z0,x1,y1,z1) -> REGION for geometric probes
			// such as Q2's rectangular solid.
			Name: "boxRegion", MinArgs: 6, MaxArgs: 6, Cost: 1,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				var c [6]uint32
				for i, a := range args {
					if a.T != sdb.TInt || a.I < 0 {
						return sdb.Value{}, fmt.Errorf("boxRegion: argument %d must be a non-negative integer", i+1)
					}
					c[i] = uint32(a.I)
				}
				r, err := region.FromBox(s.Curve, region.Box{
					Min: sfc.Pt(c[0], c[1], c[2]),
					Max: sfc.Pt(c[3], c[4], c[5]),
				})
				if err != nil {
					return sdb.Value{}, err
				}
				return s.encodeRegionValue(r)
			},
		},
		{
			// nIntersect(r1, ..., rn) -> REGION: the n-way spatial
			// intersection of the multi-study queries (Table 4).
			Name: "nIntersect", MinArgs: 1, MaxArgs: -1, Cost: 20,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				regions := make([]*region.Region, len(args))
				for i, a := range args {
					r, err := regionFromValue(db, a)
					if err != nil {
						return sdb.Value{}, err
					}
					regions[i] = r
				}
				// Regions stored in different orders (z, octant) are
				// normalized onto the system curve before intersecting.
				for i, r := range regions {
					rc, err := r.Recode(s.curveFor(r))
					if err != nil {
						return sdb.Value{}, err
					}
					regions[i] = rc
				}
				out, err := region.IntersectN(regions...)
				if err != nil {
					return sdb.Value{}, err
				}
				return s.encodeRegionValue(out)
			},
		},
		{
			Name: "numVoxels", MinArgs: 1, MaxArgs: 1, Cost: 10,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				r, err := regionFromValue(db, args[0])
				if err != nil {
					return sdb.Value{}, err
				}
				return sdb.Int(int64(r.NumVoxels())), nil
			},
		},
		{
			Name: "numRuns", MinArgs: 1, MaxArgs: 1, Cost: 10,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				r, err := regionFromValue(db, args[0])
				if err != nil {
					return sdb.Value{}, err
				}
				return sdb.Int(int64(r.NumRuns())), nil
			},
		},
		{
			// avgIntensity(DATA_REGION) -> FLOAT, a statistical response
			// over an extraction.
			Name: "avgIntensity", MinArgs: 1, MaxArgs: 1, Cost: 10,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				if args[0].T != sdb.TBytes {
					return sdb.Value{}, fmt.Errorf("avgIntensity: argument must be a DATA_REGION")
				}
				d, err := UnmarshalDataRegion(args[0].Y)
				if err != nil {
					return sdb.Value{}, err
				}
				return sdb.Float(d.Stats().Mean), nil
			},
		},
	}
	for _, u := range udfs {
		if err := s.DB.RegisterUDF(u); err != nil {
			return err
		}
	}
	return nil
}

// regionBinop evaluates a binary spatial operator, recoding operands
// onto a shared curve if needed.
func (s *System) regionBinop(db *sdb.DB, args []sdb.Value,
	op func(a, b *region.Region) (*region.Region, error)) (sdb.Value, error) {
	a, err := regionFromValue(db, args[0])
	if err != nil {
		return sdb.Value{}, err
	}
	b, err := regionFromValue(db, args[1])
	if err != nil {
		return sdb.Value{}, err
	}
	if a.Curve().Kind() != b.Curve().Kind() {
		if b, err = b.Recode(a.Curve()); err != nil {
			return sdb.Value{}, err
		}
	}
	out, err := op(a, b)
	if err != nil {
		return sdb.Value{}, err
	}
	return s.encodeRegionValue(out)
}

// encodeRegionValue wraps a region as an intermediate BYTES value using
// the system's storage encoding.
func (s *System) encodeRegionValue(r *region.Region) (sdb.Value, error) {
	enc, err := rencode.Encode(s.Cfg.Method, r)
	if err != nil {
		return sdb.Value{}, err
	}
	return sdb.Bytes(enc), nil
}

// curveFor returns the system curve matching a region's grid (the
// system's primary Hilbert curve).
func (s *System) curveFor(r *region.Region) sfc.Curve {
	if r.Curve().Kind() == s.Curve.Kind() {
		return r.Curve()
	}
	return s.Curve
}
