package qbism

import (
	"fmt"

	"qbism/internal/region"
	"qbism/internal/rencode"
	"qbism/internal/sdb"
	"qbism/internal/sfc"
	"qbism/internal/volume"
)

// registerSpatialUDFs installs the spatial operators of Section 3.2 (and
// the helpers the MedicalServer's generated SQL uses) as user-defined
// SQL functions, the way the prototype extended Starburst. Each carries
// a relative Cost hint so the planner orders same-level predicates
// cheapest-first: voxel extraction (a long-field read) is priced far
// above region algebra, which is priced above pure geometry like
// boxRegion.
func (s *System) registerSpatialUDFs() error {
	udfs := []*sdb.UDF{
		{
			// INTERSECTION(REGION r1, REGION r2) -> REGION. The first
			// operand stays queryable: a k³-tree band intersects the
			// structure's run list by pruned tree descent on the encoded
			// bytes, never materializing its own runs.
			Name: "intersection", MinArgs: 2, MaxArgs: 2, Cost: 20,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				a, err := s.queryableFromValue(db, args[0])
				if err != nil {
					return sdb.Value{}, err
				}
				b, err := regionFromValue(db, args[1])
				if err != nil {
					return sdb.Value{}, err
				}
				if a.Curve().Kind() != b.Curve().Kind() {
					if b, err = b.Recode(a.Curve()); err != nil {
						return sdb.Value{}, err
					}
				}
				out, err := region.IntersectQ(a, b)
				if err != nil {
					return sdb.Value{}, err
				}
				return s.encodeRegionValue(out)
			},
		},
		{
			// UNION(r1, r2), mentioned as a straightforward extension.
			Name: "unionRegion", MinArgs: 2, MaxArgs: 2, Cost: 20,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				return s.regionBinop(db, args, region.Union)
			},
		},
		{
			// DIFFERENCE(r1, r2), likewise.
			Name: "differenceRegion", MinArgs: 2, MaxArgs: 2, Cost: 20,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				return s.regionBinop(db, args, region.Difference)
			},
		},
		{
			// CONTAINS(REGION r1, REGION r2) -> BOOLEAN. The container
			// stays queryable: each run of r2 is one coverage probe
			// against r1's stored representation.
			Name: "contains", MinArgs: 2, MaxArgs: 2, Cost: 20, ProbeOnly: true,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				a, err := s.queryableFromValue(db, args[0])
				if err != nil {
					return sdb.Value{}, err
				}
				b, err := regionFromValue(db, args[1])
				if err != nil {
					return sdb.Value{}, err
				}
				ok, err := region.ContainsQ(a, b)
				if err != nil {
					return sdb.Value{}, err
				}
				return sdb.Bool(ok), nil
			},
		},
		{
			// containsPoint(REGION r, x, y, z) -> BOOLEAN: point
			// membership. On a k³-tree REGION this is an O(depth) descent
			// over the encoded bitmaps — no decode, no run list — which
			// is why its Cost sits just above boxRegion's.
			Name: "containsPoint", MinArgs: 4, MaxArgs: 4, Cost: 2, ProbeOnly: true,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				q, err := s.queryableFromValue(db, args[0])
				if err != nil {
					return sdb.Value{}, err
				}
				if q.Curve().Dim() != 3 {
					return sdb.Value{}, fmt.Errorf("containsPoint: REGION is %dD, want 3D", q.Curve().Dim())
				}
				side := int64(1) << uint(q.Curve().Bits())
				var c [3]uint32
				for i, a := range args[1:] {
					if a.T != sdb.TInt || a.I < 0 || a.I >= side {
						return sdb.Value{}, fmt.Errorf("containsPoint: coordinate %d must be in [0,%d)", i+1, side)
					}
					c[i] = uint32(a.I)
				}
				return sdb.Bool(q.ContainsID(q.Curve().ID(sfc.Pt(c[0], c[1], c[2])))), nil
			},
		},
		{
			// EXTRACT_DATA(VOLUME v, REGION r) -> DATA_REGION
			Name: "extractVoxels", MinArgs: 2, MaxArgs: 2, Cost: 100,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				if args[0].T != sdb.TLong {
					return sdb.Value{}, fmt.Errorf("extractVoxels: first argument must be a VOLUME long field, got %s", args[0].T)
				}
				r, err := regionFromValue(db, args[1])
				if err != nil {
					return sdb.Value{}, err
				}
				// VOLUMEs are stored in the system's Hilbert order;
				// regions arriving in another order are recoded first.
				if r.Curve().Kind() != s.Curve.Kind() {
					if r, err = r.Recode(s.Curve); err != nil {
						return sdb.Value{}, err
					}
				}
				d, err := ExtractStoredOpts(db.LFM(), args[0].L, r, s.extractOpts())
				if err != nil {
					return sdb.Value{}, err
				}
				blob, err := MarshalDataRegion(d, s.Cfg.Method)
				if err != nil {
					return sdb.Value{}, err
				}
				return sdb.Bytes(blob), nil
			},
		},
		{
			// fullVolume(VOLUME v) -> DATA_REGION over the whole grid
			// (the "flat file" access path of query Q1).
			Name: "fullVolume", MinArgs: 1, MaxArgs: 1, Cost: 100,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				if args[0].T != sdb.TLong {
					return sdb.Value{}, fmt.Errorf("fullVolume: argument must be a VOLUME long field, got %s", args[0].T)
				}
				data, err := db.LFM().Read(args[0].L)
				if err != nil {
					return sdb.Value{}, err
				}
				if uint64(len(data)) != s.Curve.Length() {
					return sdb.Value{}, fmt.Errorf("fullVolume: field has %d bytes, grid needs %d", len(data), s.Curve.Length())
				}
				d := &volume.DataRegion{Region: region.Full(s.Curve), Values: data}
				blob, err := MarshalDataRegion(d, s.Cfg.Method)
				if err != nil {
					return sdb.Value{}, err
				}
				return sdb.Bytes(blob), nil
			},
		},
		{
			// boxRegion(x0,y0,z0,x1,y1,z1) -> REGION for geometric probes
			// such as Q2's rectangular solid.
			Name: "boxRegion", MinArgs: 6, MaxArgs: 6, Cost: 1,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				var c [6]uint32
				for i, a := range args {
					if a.T != sdb.TInt || a.I < 0 {
						return sdb.Value{}, fmt.Errorf("boxRegion: argument %d must be a non-negative integer", i+1)
					}
					c[i] = uint32(a.I)
				}
				r, err := region.FromBox(s.Curve, region.Box{
					Min: sfc.Pt(c[0], c[1], c[2]),
					Max: sfc.Pt(c[3], c[4], c[5]),
				})
				if err != nil {
					return sdb.Value{}, err
				}
				return s.encodeRegionValue(r)
			},
		},
		{
			// nIntersect(r1, ..., rn) -> REGION: the n-way spatial
			// intersection of the multi-study queries (Table 4).
			Name: "nIntersect", MinArgs: 1, MaxArgs: -1, Cost: 20,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				// Compressed probes stay encoded; everything else
				// materializes and, when stored in another order (z,
				// octant), normalizes onto the system curve.
				var probes []region.Queryable
				var regions []*region.Region
				for _, a := range args {
					q, err := s.queryableFromValue(db, a)
					if err != nil {
						return sdb.Value{}, err
					}
					if r, ok := q.(*region.Region); ok {
						rc, err := r.Recode(s.curveFor(r))
						if err != nil {
							return sdb.Value{}, err
						}
						regions = append(regions, rc)
						continue
					}
					probes = append(probes, q)
				}
				var out *region.Region
				var err error
				if len(regions) > 0 {
					if out, err = region.IntersectN(regions...); err != nil {
						return sdb.Value{}, err
					}
				} else {
					out = region.Full(probes[0].Curve())
				}
				// Each probe then prunes the accumulated run list on its
				// encoded bytes — the narrowest operand first would prune
				// hardest, but argument order keeps results reproducible.
				for _, p := range probes {
					if out, err = region.IntersectQ(p, out); err != nil {
						return sdb.Value{}, err
					}
				}
				return s.encodeRegionValue(out)
			},
		},
		{
			// numVoxels never needs a run list: the k³-tree header carries
			// the count, so a compressed REGION answers from 12 bytes.
			Name: "numVoxels", MinArgs: 1, MaxArgs: 1, Cost: 10, ProbeOnly: true,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				q, err := s.queryableFromValue(db, args[0])
				if err != nil {
					return sdb.Value{}, err
				}
				return sdb.Int(int64(q.NumVoxels())), nil
			},
		},
		{
			Name: "numRuns", MinArgs: 1, MaxArgs: 1, Cost: 10,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				r, err := regionFromValue(db, args[0])
				if err != nil {
					return sdb.Value{}, err
				}
				return sdb.Int(int64(r.NumRuns())), nil
			},
		},
		{
			// avgIntensity(DATA_REGION) -> FLOAT, a statistical response
			// over an extraction.
			Name: "avgIntensity", MinArgs: 1, MaxArgs: 1, Cost: 10,
			Fn: func(db *sdb.DB, args []sdb.Value) (sdb.Value, error) {
				if args[0].T != sdb.TBytes {
					return sdb.Value{}, fmt.Errorf("avgIntensity: argument must be a DATA_REGION")
				}
				d, err := UnmarshalDataRegion(args[0].Y)
				if err != nil {
					return sdb.Value{}, err
				}
				return sdb.Float(d.Stats().Mean), nil
			},
		},
	}
	for _, u := range udfs {
		if err := s.DB.RegisterUDF(u); err != nil {
			return err
		}
	}
	return nil
}

// regionBinop evaluates a binary spatial operator, recoding operands
// onto a shared curve if needed.
func (s *System) regionBinop(db *sdb.DB, args []sdb.Value,
	op func(a, b *region.Region) (*region.Region, error)) (sdb.Value, error) {
	a, err := regionFromValue(db, args[0])
	if err != nil {
		return sdb.Value{}, err
	}
	b, err := regionFromValue(db, args[1])
	if err != nil {
		return sdb.Value{}, err
	}
	if a.Curve().Kind() != b.Curve().Kind() {
		if b, err = b.Recode(a.Curve()); err != nil {
			return sdb.Value{}, err
		}
	}
	out, err := op(a, b)
	if err != nil {
		return sdb.Value{}, err
	}
	return s.encodeRegionValue(out)
}

// encodeRegionValue wraps a region as an intermediate BYTES value using
// the system's storage encoding.
func (s *System) encodeRegionValue(r *region.Region) (sdb.Value, error) {
	enc, err := rencode.Encode(s.Cfg.Method, r)
	if err != nil {
		return sdb.Value{}, err
	}
	return sdb.Bytes(enc), nil
}

// curveFor returns the system curve matching a region's grid (the
// system's primary Hilbert curve).
func (s *System) curveFor(r *region.Region) sfc.Curve {
	if r.Curve().Kind() == s.Curve.Kind() {
		return r.Curve()
	}
	return s.Curve
}

// Per-access representation counters: how often a REGION operand was
// answered on its compressed bytes versus materialized as a run list.
// Their ratio is the observed probe fraction AdaptBandRepr feeds back
// into the representation policy.
const (
	metricRegionProbes  = "qbism_region_probe_total"
	metricRegionDecodes = "qbism_region_decode_total"
)

// queryableFromValue is regionFromValue's compressed fast path: a
// k³-tree-encoded value comes back as a *rencode.K3Probe, whose probes
// answer directly on the encoded bytes — no run list is ever
// materialized — while every other representation decodes as before
// (a *region.Region is itself Queryable). Long-field reads are charged
// identically on both paths; only the decode is skipped.
func (s *System) queryableFromValue(db *sdb.DB, v sdb.Value) (region.Queryable, error) {
	var data []byte
	switch v.T {
	case sdb.TLong:
		d, err := db.LFM().Read(v.L)
		if err != nil {
			return nil, err
		}
		data = d
	case sdb.TBytes:
		if len(v.Y) > 0 && v.Y[0] == dataRegionTag {
			d, err := UnmarshalDataRegion(v.Y)
			if err != nil {
				return nil, err
			}
			s.noteRegionDecode()
			return d.Region, nil
		}
		data = v.Y
	default:
		return nil, fmt.Errorf("qbism: expected a REGION (LONG or BYTES), got %s", v.T)
	}
	if m, ok := rencode.MethodOf(data); ok && m == rencode.K3Tree {
		p, err := rencode.ParseK3(data)
		if err != nil {
			return nil, err
		}
		s.noteRegionProbe(db)
		return p, nil
	}
	r, err := rencode.Decode(data)
	if err != nil {
		return nil, err
	}
	s.noteRegionDecode()
	return r, nil
}

// noteRegionProbe records one compressed fast-path REGION access, both
// at the qbism level (the policy's demand signal) and at the sdb level
// (the per-operator probe counter EXPLAIN ANALYZE shows).
func (s *System) noteRegionProbe(db *sdb.DB) {
	db.NoteProbeFastPath()
	if s.Metrics != nil {
		s.Metrics.Counter(metricRegionProbes).Inc()
	}
}

func (s *System) noteRegionDecode() {
	if s.Metrics != nil {
		s.Metrics.Counter(metricRegionDecodes).Inc()
	}
}
