package qbism

// Sharded execution: the study corpus partitioned across K shards,
// each a (primary, replica...) set of full QBISM nodes — its own LFM
// device, database, and netsim link — behind the cluster package's
// Node seam. The front end (DX cache, cost model, observability) is
// shared with the single-node System via frontEnd, so a query finishes
// identically whether it was fetched over one link or scatter-gathered
// across a degraded cluster.
//
// Determinism: every node synthesizes its shard of the corpus from the
// same global (ID, seed) enumeration (Config.OnlyStudies), so a shard's
// replicas — and the same studies in an unsharded system — hold
// byte-identical REGIONs. Replica failover therefore returns
// byte-identical answers, and the degraded-shard chaos suite can assert
// exact equality against an unsharded control system.

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"qbism/internal/cluster"
	"qbism/internal/costmodel"
	"qbism/internal/dx"
	"qbism/internal/faultsim"
	"qbism/internal/obs"
	"qbism/internal/region"
	"qbism/internal/spindex"
	"qbism/internal/synth"
	"qbism/internal/transport"
)

// ClusterConfig parameterizes a ClusterSystem.
type ClusterConfig struct {
	// Shards is the partition count K (default 2).
	Shards int
	// Replicas is the number of replicas per shard beyond the primary
	// (default 1, i.e. each shard is a primary/replica pair).
	Replicas int
	// Base configures every node: corpus, encoding, checksums, device.
	// Base.OnlyStudies is overwritten per node with the shard's subset;
	// Base.LinkFaults/DeviceFaults apply to every node unless NodeFaults
	// overrides them.
	Base Config
	// NodeFaults, when non-nil, returns the fault policies for the
	// given node (replica 0 is the primary); nil return values mean no
	// injection on that node. Overrides Base.LinkFaults/DeviceFaults.
	NodeFaults func(shard, replica int) (link, device *faultsim.Policy)
	// NodeDial, when non-nil, builds the cluster's transport to the
	// given node (the node's fully built System is passed in). Nil
	// means each node is reached through its own default transport —
	// the simulated link, exactly the pre-seam wiring. A custom dial
	// lets a cluster front real daemons without the routing, breaker,
	// or hedging layers changing.
	NodeDial func(shard, replica int, sys *System) (transport.Transport, error)
	// Breaker configures each node's circuit breaker (zero disables).
	Breaker cluster.BreakerConfig
	// Retry governs cross-node failover retries: MaxAttempts bounds the
	// node calls per read and Backoff/Seed drive the deterministic
	// jittered waits — the exact schedule PR 1 established for
	// single-link retries, reused at the cluster seam.
	Retry RetryPolicy
	// HedgeAfter enables hedged reads once a node's simulated-latency
	// EWMA reaches it (zero disables).
	HedgeAfter time.Duration
	// Workers bounds the scatter-gather worker pool (default
	// Base.Workers).
	Workers int
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Shards < 1 {
		c.Shards = 2
	}
	if c.Replicas < 0 {
		c.Replicas = 0
	} else if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.Workers == 0 {
		c.Workers = c.Base.Workers
	}
	return c
}

// ClusterSystem is a sharded QBISM deployment: K shards of replicated
// nodes behind one front end. It exposes the same query surface as
// System — RunQuery, RunQueries, ConsistentBandRegion — with routing,
// failover, and partial-result semantics layered in.
type ClusterSystem struct {
	Cfg     ClusterConfig
	Cluster *cluster.Cluster
	// Nodes holds the per-shard node systems: Nodes[shard][0] is the
	// primary, the rest replicas.
	Nodes [][]*System

	// Studies is the global corpus view (every study, regardless of
	// shard), in load order.
	Studies []StudyInfo

	Model   costmodel.Model
	Cache   *dx.Cache
	Tracer  *obs.Tracer
	Metrics *obs.Registry
	SlowLog *obs.SlowLog

	routes map[int]cluster.Key // studyID -> routing key
	// tnodes flattens every transportNode handed to the cluster, so
	// Close can release dialed transports the cluster layer holds.
	tnodes []*transportNode
}

// Close releases every node the cluster built: each replica's dialed
// transport and each node System (its own transport and long-field
// manager). All underlying closes are idempotent, so the overlap
// between a node's transport and its System is harmless. Close also
// works on a partially constructed cluster, which is how
// NewClusterSystem unwinds its error paths.
func (cs *ClusterSystem) Close() error {
	var first error
	for _, n := range cs.tnodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, replicas := range cs.Nodes {
		for _, sys := range replicas {
			if err := sys.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// NewClusterSystem enumerates the corpus, partitions it by
// (patient, study) key, and builds one full System per node, each
// loading only its shard's studies.
func NewClusterSystem(cfg ClusterConfig) (*ClusterSystem, error) {
	cfg = cfg.withDefaults()
	base := cfg.Base.withDefaults()

	// Enumerate the global corpus exactly as loadStudies will: the
	// routing table is derived from IDs alone, before any node exists.
	part := cluster.NewPartitioner(cfg.Shards)
	cs := &ClusterSystem{
		Cfg:    cfg,
		routes: make(map[int]cluster.Key),
	}
	perShard := make([][]int, cfg.Shards)
	for i := 0; i < base.NumPET+base.NumMRI; i++ {
		info := StudyInfo{StudyID: i + 1, PatientID: i + 1, Modality: modalityFor(base, i)}
		key := cluster.Key{Patient: info.PatientID, Study: info.StudyID}
		sh := part.Shard(key)
		cs.routes[info.StudyID] = key
		perShard[sh] = append(perShard[sh], info.StudyID)
		cs.Studies = append(cs.Studies, info)
	}

	pol := cfg.Retry.WithDefaults()
	var shardNodes [][]cluster.Node
	for sh := 0; sh < cfg.Shards; sh++ {
		var nodes []cluster.Node
		for r := 0; r <= cfg.Replicas; r++ {
			nodeCfg := base
			// The shard's subset — always non-nil, so an empty shard
			// loads nothing rather than everything.
			nodeCfg.OnlyStudies = append([]int{}, perShard[sh]...)
			// The cluster owns retries and failover; each node link
			// answers exactly once per dial.
			nodeCfg.Retry = RetryPolicy{MaxAttempts: 1}
			// Node-level tracing is off: spans hang off the front end's
			// tracer through the parent span threaded into each call.
			nodeCfg.Trace = false
			nodeCfg.SlowLogThreshold = 0
			if cfg.NodeFaults != nil {
				nodeCfg.LinkFaults, nodeCfg.DeviceFaults = cfg.NodeFaults(sh, r)
			}
			sys, err := New(nodeCfg)
			if err != nil {
				cs.Close()
				return nil, fmt.Errorf("qbism: cluster node s%dr%d: %w", sh, r, err)
			}
			cs.addNode(sh, sys)
			tr := sys.Transport
			if cfg.NodeDial != nil {
				if tr, err = cfg.NodeDial(sh, r, sys); err != nil {
					cs.Close()
					return nil, fmt.Errorf("qbism: dialing node s%dr%d: %w", sh, r, err)
				}
			}
			tn := &transportNode{name: nodeName(sh, r), t: tr}
			cs.tnodes = append(cs.tnodes, tn)
			nodes = append(nodes, tn)
		}
		shardNodes = append(shardNodes, nodes)
	}

	cs.Metrics = obs.NewRegistry()
	cs.Model = costmodel.Default1993()
	cs.Cache = dx.NewCache(8)
	if base.Trace {
		cs.Tracer = obs.NewTracer()
		if base.SlowLogThreshold > 0 {
			cs.SlowLog = obs.NewSlowLog(base.SlowLogCapacity)
		}
	}

	cl, err := cluster.New(cluster.Config{
		Breaker:     cfg.Breaker,
		MaxAttempts: pol.MaxAttempts,
		Backoff:     pol.Backoff,
		JitterSeed:  pol.Seed,
		Retryable:   RetryableError,
		HedgeAfter:  cfg.HedgeAfter,
		Metrics:     cs.Metrics,
	}, shardNodes)
	if err != nil {
		cs.Close()
		return nil, err
	}
	cs.Cluster = cl
	return cs, nil
}

func (cs *ClusterSystem) addNode(shard int, sys *System) {
	for len(cs.Nodes) <= shard {
		cs.Nodes = append(cs.Nodes, nil)
	}
	cs.Nodes[shard] = append(cs.Nodes[shard], sys)
}

// nodeName follows the s<shard>p / s<shard>r<i> convention.
func nodeName(shard, replica int) string {
	if replica == 0 {
		return fmt.Sprintf("s%dp", shard)
	}
	return fmt.Sprintf("s%dr%d", shard, replica)
}

// modalityFor mirrors loadStudies' modality assignment.
func modalityFor(cfg Config, i int) synth.Modality {
	if i >= cfg.NumPET {
		return synth.MRI
	}
	return synth.PET
}

// Route returns the shard a study's queries are served by.
func (cs *ClusterSystem) Route(studyID int) (shard int, ok bool) {
	key, ok := cs.routes[studyID]
	if !ok {
		return 0, false
	}
	return cs.Cluster.Partitioner().Shard(key), true
}

// fe returns the cluster's shared front end.
func (cs *ClusterSystem) fe() frontEnd {
	return frontEnd{
		cache:      cs.Cache,
		model:      cs.Model,
		metrics:    cs.Metrics,
		slowLog:    cs.SlowLog,
		slowThresh: cs.Cfg.Base.SlowLogThreshold,
	}
}

// transportNode adapts one node's Transport to the cluster.Node seam:
// the cluster no longer knows whether a node is a simulated link or a
// live daemon — it consumes the seam's Stats.Latency deltas either
// way. Each call is serialized per node so the stats delta pricing the
// call's latency is exact; different nodes still serve concurrently.
// (For the default sim transport the delta is numerically identical to
// what the pre-seam linkNode computed by hand from link stats.)
type transportNode struct {
	name string
	t    transport.Transport
	mu   sync.Mutex
}

func (n *transportNode) Name() string { return n.name }

// Close releases the node's transport. The sim flavors make this a
// no-op; a dialed TCP transport drops its socket.
func (n *transportNode) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.t == nil {
		return nil
	}
	return n.t.Close()
}

// Call dials the node's transport once and validates the response
// frame, so a reply corrupted in flight surfaces here as a typed
// retryable error — failover fodder — rather than downstream in the
// DX import.
func (n *transportNode) Call(parent *obs.Span, method string, request []byte) ([]byte, time.Duration, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	net0 := n.t.Stats()
	resp, err := n.t.Call(parent, method, request)
	lat := n.t.Stats().Sub(net0).Latency
	if err != nil {
		return nil, lat, err
	}
	if _, _, err := splitResponse(resp); err != nil {
		return nil, lat, err
	}
	return resp, lat, nil
}

// RunQuery executes one query end to end through the cluster: route by
// (patient, study) key, read with failover/hedging, then finish through
// the shared front end. The result's Shard field reports how the read
// was served.
func (cs *ClusterSystem) RunQuery(spec QuerySpec) (*QueryResult, error) {
	return cs.runQuerySpan(nil, spec)
}

func (cs *ClusterSystem) runQuerySpan(parent *obs.Span, spec QuerySpec) (*QueryResult, error) {
	cs.Cache.Flush() // same measurement protocol as System.RunQuery
	totalStart := time.Now()

	var root *obs.Span
	if parent != nil {
		root = parent.Child("query")
	} else {
		root = cs.Tracer.Start("query")
	}
	root.SetStr("spec", spec.Label())

	key, ok := cs.routes[spec.StudyID]
	if !ok {
		// Unroutable: terminal, not a shard health problem.
		return nil, cs.fe().fail(root, RetryStats{Attempts: 1},
			fmt.Errorf("qbism: no study %d in the cluster corpus", spec.StudyID))
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, cs.fe().fail(root, RetryStats{}, err)
	}
	request := encodeFrame(specJSON, nil)

	resp, info, err := cs.Cluster.Read(root, key, medicalQueryMethod, request)
	retry := RetryStats{Attempts: info.Attempts, Retries: info.Retries, BackoffSim: info.BackoffSim}
	if err != nil {
		retry.LastError = err.Error()
		return nil, cs.fe().fail(root, retry, fmt.Errorf("qbism: query failed: %w", err))
	}
	meta, blob, err := splitResponse(resp)
	if err != nil {
		// Unreachable in practice: the winning node already validated
		// the frame. Kept for defense in depth.
		return nil, cs.fe().fail(root, retry, err)
	}
	// One successful exchange = 2 messages; the read's simulated
	// latency already prices the winning call's network model time,
	// injected latency, and call quantum.
	res, err := cs.fe().finish(root, spec, meta, blob, retry, 2, info.LatencySim, totalStart)
	if res != nil {
		shardInfo := info
		res.Shard = &shardInfo
	}
	return res, err
}

// RunQueries scatter-gathers the specs across the cluster over a
// bounded worker pool, returning one BatchItem per spec in input order
// plus the batch's PartialResult: nil when every shard answered,
// otherwise the typed meta naming each shard lost past retries and the
// keys that went unanswered with it. Items lost to a dead shard carry
// a cluster.ErrShardUnavailable error; the surviving items' results
// are complete and exact — graceful degradation, never a silent wrong
// answer.
func (cs *ClusterSystem) RunQueries(specs []QuerySpec, workers int) ([]BatchItem, *cluster.PartialResult) {
	items, partial, _ := cs.RunQueriesTraced(specs, workers)
	return items, partial
}

// RunQueriesTraced is RunQueries plus the batch's root span (nil when
// tracing is off).
func (cs *ClusterSystem) RunQueriesTraced(specs []QuerySpec, workers int) ([]BatchItem, *cluster.PartialResult, *obs.Span) {
	if workers <= 0 {
		workers = cs.Cfg.Workers
	}
	batch := cs.Tracer.Start("batch")
	batch.SetInt("queries", int64(len(specs)))
	batch.SetInt("workers", int64(workers))
	defer batch.End()

	out := make([]BatchItem, len(specs))
	for i, spec := range specs {
		out[i].Spec = spec
	}
	run := func(i int) {
		out[i].Res, out[i].Err = cs.runQuerySpan(batch, out[i].Spec)
	}
	if workers <= 1 || len(specs) <= 1 {
		for i := range specs {
			run(i)
		}
	} else {
		if workers > len(specs) {
			workers = len(specs)
		}
		work := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range work {
					run(i)
				}
			}()
		}
		for i := range specs {
			work <- i
		}
		close(work)
		wg.Wait()
	}

	partial := cs.buildPartial(out)
	if partial != nil {
		cs.Metrics.Counter("cluster_partial_total").Inc()
		cs.Metrics.Counter("cluster_lost_queries_total").Add(int64(partial.LostKeys()))
		batch.SetStr("partial", partial.String())
	}
	return out, partial, batch
}

// buildPartial folds a batch's shard-unavailable failures into the
// typed PartialResult meta.
func (cs *ClusterSystem) buildPartial(items []BatchItem) *cluster.PartialResult {
	keys := make([]cluster.Key, len(items))
	shards := make([]int, len(items))
	errs := make([]error, len(items))
	for i, item := range items {
		errs[i] = item.Err
		key, ok := cs.routes[item.Spec.StudyID]
		if !ok {
			continue // unroutable items are plain errors, not lost shards
		}
		keys[i] = key
		shards[i] = cs.Cluster.Partitioner().Shard(key)
	}
	return cluster.BuildPartial(cs.Cluster.Shards(), keys, shards, errs)
}

// ConsistentBandRegion computes the population answer — the REGION
// where every listed study has intensities in [bandLo, bandHi] — by
// scatter-gathering per-study band queries across the cluster. When
// shards are lost past retries, the intersection covers the surviving
// studies only and the PartialResult names what is missing; err is
// non-nil only for terminal failures or when no study survived.
func (cs *ClusterSystem) ConsistentBandRegion(studies []int, bandLo, bandHi int, encoding string, workers int) (*region.Region, *cluster.PartialResult, error) {
	if len(studies) == 0 {
		return nil, nil, fmt.Errorf("qbism: ConsistentBandRegion needs at least one study")
	}
	specs := make([]QuerySpec, len(studies))
	for i, id := range studies {
		specs[i] = QuerySpec{
			StudyID: id, Atlas: "Talairach",
			HasBand: true, BandLo: bandLo, BandHi: bandHi, Encoding: encoding,
		}
	}
	items, partial := cs.RunQueries(specs, workers)
	var regions []*region.Region
	for _, item := range items {
		switch {
		case item.Err == nil:
			// A band query's DataRegion carries exactly the band REGION
			// (Extract preserves the query region).
			regions = append(regions, item.Res.Data.Region)
		case errors.Is(item.Err, cluster.ErrShardUnavailable):
			// Accounted in partial; the intersection degrades gracefully.
		default:
			return nil, partial, fmt.Errorf("qbism: study %d band [%d,%d]: %w",
				item.Spec.StudyID, bandLo, bandHi, item.Err)
		}
	}
	if len(regions) == 0 {
		return nil, partial, fmt.Errorf("qbism: all %d studies lost: %w", len(studies), cluster.ErrShardUnavailable)
	}
	out, err := region.IntersectN(regions...)
	return out, partial, err
}

// BuildActivityIndex builds the population activity index across every
// shard's primary, merging the per-node band REGIONs (each node holds
// only its shard of the corpus) into one R-tree. Studies are visited
// in ascending ID order so R-tree construction is deterministic.
func (cs *ClusterSystem) BuildActivityIndex(minIntensity uint8) (*ActivityIndex, error) {
	idx := &ActivityIndex{
		tree:    spindex.New(),
		entries: make(map[int64]ActivityEntry),
	}
	next := int64(1)
	var ids []int
	byStudy := make(map[int]*System)
	for _, nodes := range cs.Nodes {
		primary := nodes[0]
		for studyID := range primary.BandRegions {
			ids = append(ids, studyID)
			byStudy[studyID] = primary
		}
	}
	sort.Ints(ids)
	for _, studyID := range ids {
		for _, b := range byStudy[studyID].BandRegions[studyID] {
			if b.Lo < minIntensity || b.Region.Empty() {
				continue
			}
			min, max, ok := b.Region.Bounds()
			if !ok {
				continue
			}
			id := next
			next++
			idx.entries[id] = ActivityEntry{
				StudyID: studyID, BandLo: b.Lo, BandHi: b.Hi, Voxels: b.Region.NumVoxels(),
			}
			if err := idx.tree.Insert(spindex.Entry{
				ID: id,
				Box: spindex.Box3{
					MinX: min.X, MinY: min.Y, MinZ: min.Z,
					MaxX: max.X, MaxY: max.Y, MaxZ: max.Z,
				},
			}); err != nil {
				return nil, err
			}
		}
	}
	return idx, nil
}
