package qbism

import "testing"

// Traced vs untraced suite benchmarks at perfbench scale; run in one
// process so the comparison shares host conditions:
//
//	go test ./internal/qbism -bench BenchmarkSuite -run xxx

func benchSuite(b *testing.B, trace bool) {
	cfg := Config{Bits: 6, NumPET: 5, NumMRI: 1, Seed: 1993, SmallStudies: true, ExtraBandEncodings: true, Checksums: true}
	cfg.Trace = trace
	sys, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	specs := sys.Table3Queries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			if _, err := sys.RunQuery(spec); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSuiteUntraced(b *testing.B) { benchSuite(b, false) }
func BenchmarkSuiteTraced(b *testing.B)   { benchSuite(b, true) }
