package qbism

import "qbism/internal/transport"

// The medicalQuery frame codec lives in internal/transport now — the
// same frame carries payloads in-process, across the simulated link,
// and over real sockets — so this file only keeps the package-local
// names the query path and the public API surface were built on.

// Typed frame failures, re-exported from the transport seam so
// errors.Is checks against the qbism names keep working.
var (
	// ErrFrameTruncated means the payload is shorter than its frame
	// declares (bytes were lost).
	ErrFrameTruncated = transport.ErrFrameTruncated
	// ErrFrameCorrupt means the frame's magic, lengths, or checksum do
	// not add up (bytes were altered).
	ErrFrameCorrupt = transport.ErrFrameCorrupt
)

// encodeFrame wraps header and body in a checksummed frame. The only
// encode failure is a section exceeding the frame's uint32 length
// fields (> 4 GiB); nothing the query path frames — spec JSON, meta
// JSON, a study region blob — can get near that, so it is treated as
// a programming error rather than plumbed through every call site.
func encodeFrame(header, body []byte) []byte {
	out, err := transport.EncodeFrame(header, body)
	if err != nil {
		panic("qbism: " + err.Error())
	}
	return out
}

// decodeFrame validates and unwraps a frame.
func decodeFrame(buf []byte) (header, body []byte, err error) {
	return transport.DecodeFrame(buf)
}
