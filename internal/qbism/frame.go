package qbism

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// The medicalQuery RPC wraps both directions in a length+checksum frame
// so either end detects truncated or corrupted payloads instead of
// mis-parsing them:
//
//	magic(2) | headerLen(4) | bodyLen(4) | crc32(4) | header | body
//
// For a request the header is the QuerySpec JSON and the body is empty;
// for a response the header is the QueryMeta JSON and the body is the
// DataRegion blob. The CRC32 (IEEE) covers header and body, so any
// single flipped bit anywhere in the payload is detected.

// frameMagic marks a medicalQuery frame ("QM").
const frameMagic uint16 = 0x514D

// frameOverhead is the fixed frame prefix size in bytes.
const frameOverhead = 14

// Typed frame failures. Both indicate the payload was damaged in
// flight, so both are retryable.
var (
	// ErrFrameTruncated means the payload is shorter than its frame
	// declares (bytes were lost).
	ErrFrameTruncated = errors.New("qbism: frame truncated")
	// ErrFrameCorrupt means the frame's magic, lengths, or checksum do
	// not add up (bytes were altered).
	ErrFrameCorrupt = errors.New("qbism: frame corrupt")
)

// encodeFrame wraps header and body in a checksummed frame.
func encodeFrame(header, body []byte) []byte {
	out := make([]byte, frameOverhead+len(header)+len(body))
	binary.BigEndian.PutUint16(out, frameMagic)
	binary.BigEndian.PutUint32(out[2:], uint32(len(header)))
	binary.BigEndian.PutUint32(out[6:], uint32(len(body)))
	copy(out[frameOverhead:], header)
	copy(out[frameOverhead+len(header):], body)
	binary.BigEndian.PutUint32(out[10:], crc32.ChecksumIEEE(out[frameOverhead:]))
	return out
}

// decodeFrame validates and unwraps a frame. The declared lengths are
// bounds-checked against the actual payload before any slicing, and the
// checksum is verified over the entire content.
func decodeFrame(buf []byte) (header, body []byte, err error) {
	if len(buf) < frameOverhead {
		return nil, nil, fmt.Errorf("%w: %d bytes, frame needs at least %d", ErrFrameTruncated, len(buf), frameOverhead)
	}
	if m := binary.BigEndian.Uint16(buf); m != frameMagic {
		return nil, nil, fmt.Errorf("%w: bad magic %#04x", ErrFrameCorrupt, m)
	}
	hlen := uint64(binary.BigEndian.Uint32(buf[2:]))
	blen := uint64(binary.BigEndian.Uint32(buf[6:]))
	declared := frameOverhead + hlen + blen
	if declared > uint64(len(buf)) {
		return nil, nil, fmt.Errorf("%w: frame declares %d bytes, got %d", ErrFrameTruncated, declared, len(buf))
	}
	if declared < uint64(len(buf)) {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes", ErrFrameCorrupt, uint64(len(buf))-declared)
	}
	want := binary.BigEndian.Uint32(buf[10:])
	if got := crc32.ChecksumIEEE(buf[frameOverhead:]); got != want {
		return nil, nil, fmt.Errorf("%w: checksum %#08x, want %#08x", ErrFrameCorrupt, got, want)
	}
	return buf[frameOverhead : frameOverhead+hlen], buf[frameOverhead+hlen:], nil
}
