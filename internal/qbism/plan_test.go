package qbism

import (
	"regexp"
	"strings"
	"testing"
)

// Golden tests for the physical plans behind the paper's measured
// queries: Table 3's spec shapes (Q1–Q6) and a Table 4-style spatial
// probe. The property under test is the tentpole guarantee — spatial
// and selection predicates evaluate below the data-extraction
// projection, so REGION/VOLUME long-field reads happen only for rows
// that survived the WHERE clause.

// planFor renders the EXPLAIN tree for a spec as one string plus the
// line list.
func planFor(t *testing.T, s *System, spec QuerySpec) (string, []string) {
	t.Helper()
	lines, err := s.ExplainSpec(spec, false)
	if err != nil {
		t.Fatalf("ExplainSpec(%s): %v", spec.Label(), err)
	}
	// Band queries lead with the representation annotation; the
	// plan-shape assertions below inspect only the operator tree.
	// TestExplainSpecBandRepr covers the annotation itself.
	for len(lines) > 0 && strings.HasPrefix(lines[0], "band repr:") {
		lines = lines[1:]
	}
	return strings.Join(lines, "\n"), lines
}

// lineIndex returns the index of the first line containing sub, or -1.
func lineIndex(lines []string, sub string) int {
	for i, l := range lines {
		if strings.Contains(l, sub) {
			return i
		}
	}
	return -1
}

func TestExplainSpecTable3Shapes(t *testing.T) {
	s := testSystem(t)
	cases := []struct {
		name string
		spec QuerySpec
		root string // extraction call at the projection root
	}{
		{"Q1-full-study", QuerySpec{StudyID: 1, Atlas: "Talairach", FullStudy: true},
			"fullVolume(wv.data)"},
		{"Q2-box", QuerySpec{StudyID: 1, Atlas: "Talairach", Box: &[6]uint32{4, 4, 4, 12, 12, 12}},
			"extractVoxels(wv.data, boxRegion(?, ?, ?, ?, ?, ?))"},
		{"Q3-structure", QuerySpec{StudyID: 1, Atlas: "Talairach", Structure: "putamen"},
			"extractVoxels(wv.data, as.region)"},
		{"Q5-band", QuerySpec{StudyID: 1, Atlas: "Talairach", HasBand: true, BandLo: 224, BandHi: 255},
			"extractVoxels(wv.data, ib.region)"},
		{"Q6-band-structure", QuerySpec{StudyID: 1, Atlas: "Talairach", Structure: "putamen",
			HasBand: true, BandLo: 224, BandHi: 255},
			"extractVoxels(wv.data, intersection(ib.region, as.region))"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, lines := planFor(t, s, tc.spec)
			// The extraction is the projection at the tree root: line 0,
			// no indentation.
			if !strings.HasPrefix(lines[0], "project ["+tc.root) {
				t.Errorf("root is not the extraction projection:\n%s", plan)
			}
			// Every WHERE predicate evaluates strictly below it.
			for i, l := range lines[1:] {
				if strings.Contains(l, "filter") && !strings.HasPrefix(l, "  ") {
					t.Errorf("filter at line %d not below the projection:\n%s", i+1, plan)
				}
			}
			// The study restriction reaches the warpedVolume scan.
			fi := lineIndex(lines, "filter (wv.studyId = ?)")
			si := lineIndex(lines, "scan warpedVolume")
			if fi < 0 || si < 0 || si != fi+1 {
				t.Errorf("studyId filter not directly above the wv scan:\n%s", plan)
			}
		})
	}
}

func TestExplainSpecBandStructurePushdown(t *testing.T) {
	s := testSystem(t)
	spec := QuerySpec{StudyID: 1, Atlas: "Talairach", Structure: "putamen",
		HasBand: true, BandLo: 224, BandHi: 255}
	plan, lines := planFor(t, s, spec)

	proj := lineIndex(lines, "project [extractVoxels")
	if proj != 0 {
		t.Fatalf("extraction projection not at root:\n%s", plan)
	}
	// The band selection is pushed onto the intensityBand scan: its
	// filter line is annotated and sits directly above scan intensityBand.
	bandFilter := lineIndex(lines, "(ib.lo = ?)")
	if bandFilter < 0 || !strings.Contains(lines[bandFilter], "[pushed]") {
		t.Errorf("band filter not pushed:\n%s", plan)
	}
	ibScan := lineIndex(lines, "scan intensityBand")
	if ibScan != bandFilter+1 {
		t.Errorf("band filter not on the intensityBand scan:\n%s", plan)
	}
	// Likewise the structure-name selection onto neuralStructure.
	nsFilter := lineIndex(lines, "(ns.structureName = ?)")
	if nsFilter < 0 || !strings.Contains(lines[nsFilter], "[pushed]") {
		t.Errorf("structure filter not pushed:\n%s", plan)
	}
	if nsScan := lineIndex(lines, "scan neuralStructure"); nsScan != nsFilter+1 {
		t.Errorf("structure filter not on the neuralStructure scan:\n%s", plan)
	}
	// All four tables join through equality keys, so every join is a
	// hash join — no nested-loop fallback in the paper's main query.
	if n := strings.Count(plan, "hash join on "); n != 3 {
		t.Errorf("want 3 hash joins, got %d:\n%s", n, plan)
	}
	if strings.Contains(plan, "nested loop") {
		t.Errorf("unexpected nested loop:\n%s", plan)
	}
}

func TestExplainSpatialPredicatePushdown(t *testing.T) {
	// A Table 4-style probe written as raw SQL: which structures'
	// REGIONs contain a given box? The contains() predicate names only
	// the atlasStructure alias, so it is evaluated at that scan — below
	// the join and the projection — and the cheap atlasId comparison
	// runs before the REGION-reading UDF on the same node.
	s := testSystem(t)
	res, err := s.DB.Exec(`
explain select ns.structureName
from   atlasStructure as, neuralStructure ns
where  as.atlasId = 1 and
       contains(as.region, boxRegion(14, 14, 14, 16, 16, 16)) and
       as.structureId = ns.structureId`)
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		lines[i] = row[0].S
	}
	plan := strings.Join(lines, "\n")

	ci := lineIndex(lines, "contains(as.region")
	if ci < 1 || !strings.Contains(lines[ci], "[pushed]") {
		t.Fatalf("contains() not pushed below the projection:\n%s", plan)
	}
	if si := lineIndex(lines, "scan atlasStructure"); si != ci+1 {
		t.Errorf("contains() filter not on the atlasStructure scan:\n%s", plan)
	}
	// Cost-ordered conjuncts: the integer comparison precedes the
	// long-field-reading UDF inside the same filter.
	cheap := strings.Index(lines[ci], "as.atlasId = 1")
	costly := strings.Index(lines[ci], "contains(")
	if cheap < 0 || cheap > costly {
		t.Errorf("predicates not cost-ordered on the scan filter: %q", lines[ci])
	}
	if !strings.Contains(plan, "hash join on as.structureId = ns.structureId") &&
		!strings.Contains(plan, "hash join on ns.structureId = as.structureId") {
		t.Errorf("structure join is not a hash join:\n%s", plan)
	}
}

func TestExplainSpecAnalyzeCounters(t *testing.T) {
	s := testSystem(t)
	spec := QuerySpec{StudyID: 1, Atlas: "Talairach", HasBand: true, BandLo: 224, BandHi: 255}
	lines, err := s.ExplainSpec(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	// The band query leads with its representation annotation; every
	// line after it is an operator line carrying counters.
	if !strings.HasPrefix(lines[0], "band repr: ") {
		t.Fatalf("band query missing repr annotation: %q", lines[0])
	}
	lines = lines[1:]
	plan := strings.Join(lines, "\n")
	counter := regexp.MustCompile(`\[in=\d+ out=\d+ udf=\d+ pages=\d+ probe=\d+\]$`)
	for _, l := range lines {
		if !counter.MatchString(l) {
			t.Errorf("line missing counters: %q", l)
		}
	}
	// The projection evaluated extractVoxels exactly once (one surviving
	// row) and was charged its long-field page reads.
	root := lines[0]
	if !strings.Contains(root, "udf=1 ") {
		t.Errorf("projection UDF count wrong: %q", root)
	}
	if m := regexp.MustCompile(`pages=(\d+) probe=\d+\]$`).FindStringSubmatch(root); m == nil || m[1] == "0" {
		t.Errorf("projection charged no pages: %q", root)
	}
	// The pushed band filter compares plain INT columns: zero pages.
	bf := lineIndex(lines, "(ib.lo = ?)")
	if bf < 0 || !strings.Contains(lines[bf], "pages=0 probe=0]") {
		t.Errorf("band filter charged pages it did not read: %q\n%s", lines[bf], plan)
	}
}

func TestExplainSpecPushdownDisabled(t *testing.T) {
	s, err := New(Config{Bits: 4, NumPET: 1, Seed: 7, SmallStudies: true, DisablePushdown: true})
	if err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{StudyID: 1, Atlas: "Talairach", Structure: "putamen",
		HasBand: true, BandLo: 224, BandHi: 255}
	plan, lines := planFor(t, s, spec)
	if strings.Contains(plan, "hash join") || strings.Contains(plan, "[pushed]") {
		t.Errorf("pushdown-off plan still optimized:\n%s", plan)
	}
	// One monolithic filter above FROM-order nested loops.
	var filters int
	for _, l := range lines {
		if strings.Contains(l, "filter (") {
			filters++
		}
	}
	if filters != 1 {
		t.Errorf("want one monolithic filter, got %d:\n%s", filters, plan)
	}
	// FROM order: warpedVolume scans first among the scans.
	if wv, ib := lineIndex(lines, "scan warpedVolume"), lineIndex(lines, "scan intensityBand"); wv < 0 || ib < 0 || wv > ib {
		t.Errorf("FROM order not preserved:\n%s", plan)
	}
	// The de-optimized plan still answers correctly.
	if _, err := s.RunQuery(spec); err != nil {
		t.Errorf("pushdown-off query failed: %v", err)
	}
}
