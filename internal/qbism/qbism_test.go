package qbism

import (
	"math/rand"
	"sync"
	"testing"

	"qbism/internal/region"
	"qbism/internal/rencode"
	"qbism/internal/sdb"
	"qbism/internal/volume"
)

// testSystem builds a small (32^3) fully loaded system once per test
// binary; building it is itself a significant integration test.
var (
	sysOnce sync.Once
	sysInst *System
	sysErr  error
)

func testSystem(t *testing.T) *System {
	t.Helper()
	sysOnce.Do(func() {
		sysInst, sysErr = New(Config{
			Bits:               5,
			NumPET:             3,
			NumMRI:             1,
			Seed:               7,
			Method:             rencode.Naive,
			SmallStudies:       true,
			ExtraBandEncodings: true,
			StoreRaw:           true,
			WithMeshes:         true,
		})
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysInst
}

func TestSystemLoads(t *testing.T) {
	s := testSystem(t)
	if len(s.Studies) != 4 {
		t.Fatalf("studies = %d", len(s.Studies))
	}
	if len(s.Atlas.Structures) != 11 {
		t.Fatalf("structures = %d", len(s.Atlas.Structures))
	}
	// Tables populated.
	for table, wantRows := range map[string]int{
		"atlas":           1,
		"patient":         4,
		"rawVolume":       4,
		"warpedVolume":    4,
		"atlasStructure":  11,
		"neuralStructure": 11,
		"intensityBand":   4 * 8 * 4, // 8 bands x (3 run encodings + k3-tree) per study
	} {
		res := s.DB.MustExec("select * from " + table)
		if len(res.Rows) != wantRows {
			t.Errorf("table %s has %d rows, want %d", table, len(res.Rows), wantRows)
		}
	}
}

func TestPaperSQLRunsVerbatim(t *testing.T) {
	// The two §3.4 queries, adjusted only for study id.
	s := testSystem(t)
	res := s.DB.MustExec(`
select a.n, a.x0, a.y0, a.z0, a.dx, a.dy, a.dz,
       a.atlasId, p.name, p.patientId, rv.date
from   atlas a, rawVolume rv,
       warpedVolume wv, patient p
where  a.atlasId = wv.atlasId and
       wv.studyId = rv.studyId and
       rv.patientId = p.patientId and
       rv.studyId = 1 and a.atlasName = 'Talairach'`)
	if len(res.Rows) != 1 {
		t.Fatalf("first query rows = %d", len(res.Rows))
	}
	res = s.DB.MustExec(`
select as.region,
       extractVoxels(wv.data, as.region)
from   warpedVolume wv, atlasStructure as,
       neuralStructure ns
where  wv.studyId = 1 and
       wv.atlasId = as.atlasId and
       as.structureId = ns.structureId and
       ns.structureName = 'putamen'`)
	if len(res.Rows) != 1 {
		t.Fatalf("second query rows = %d", len(res.Rows))
	}
	d, err := UnmarshalDataRegion(res.Rows[0][1].Y)
	if err != nil {
		t.Fatal(err)
	}
	putamen, _ := s.Atlas.ByName("putamen")
	if d.Region.NumVoxels() != putamen.Region.NumVoxels() {
		t.Errorf("extracted %d voxels, structure has %d", d.Region.NumVoxels(), putamen.Region.NumVoxels())
	}
}

func TestExtractMatchesDirectExtraction(t *testing.T) {
	// extractVoxels through SQL+LFM must equal volume.Extract on the
	// in-memory warped volume.
	s := testSystem(t)
	res := s.DB.MustExec(`select wv.data from warpedVolume wv where wv.studyId = 1`)
	volBytes, err := s.LFM.Read(res.Rows[0][0].L)
	if err != nil {
		t.Fatal(err)
	}
	vol, err := volume.New(s.Curve, volBytes)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := s.Atlas.ByName("hippocampus")
	want, err := volume.Extract(vol, st.Region)
	if err != nil {
		t.Fatal(err)
	}
	res = s.DB.MustExec(`
select extractVoxels(wv.data, as.region)
from warpedVolume wv, atlasStructure as, neuralStructure ns
where wv.studyId = 1 and wv.atlasId = as.atlasId
  and as.structureId = ns.structureId and ns.structureName = 'hippocampus'`)
	got, err := UnmarshalDataRegion(res.Rows[0][0].Y)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Region.Equal(want.Region) {
		t.Fatal("regions differ")
	}
	for i := range want.Values {
		if got.Values[i] != want.Values[i] {
			t.Fatalf("value %d differs: %d vs %d", i, got.Values[i], want.Values[i])
		}
	}
}

func TestPageCoalescedExtraction(t *testing.T) {
	// Extracting a clustered structure must cost close to the page span
	// of its voxel bytes, far below one I/O per run.
	s := testSystem(t)
	st, _ := s.Atlas.ByName("ntal")
	res := s.DB.MustExec(`select wv.data from warpedVolume wv where wv.studyId = 1`)
	h := res.Rows[0][0].L
	before := s.LFM.Stats()
	d, err := ExtractStored(s.LFM, h, st.Region)
	if err != nil {
		t.Fatal(err)
	}
	pages := s.LFM.Stats().Sub(before).PageReads
	if d.NumVoxels() != st.Region.NumVoxels() {
		t.Fatalf("extracted %d voxels", d.NumVoxels())
	}
	// Lower bound: bytes/pagesize; upper bound: one page per run would
	// be NumRuns. Hilbert clustering must land well below the per-run cost.
	minPages := st.Region.NumVoxels() / s.LFM.PageSize()
	if pages < minPages {
		t.Errorf("pages = %d below physical minimum %d", pages, minPages)
	}
	if st.Region.NumRuns() > 40 && pages > uint64(st.Region.NumRuns())/2 {
		t.Errorf("pages = %d not coalesced (runs = %d)", pages, st.Region.NumRuns())
	}
}

func TestEmptyRegionExtraction(t *testing.T) {
	s := testSystem(t)
	res := s.DB.MustExec(`select wv.data from warpedVolume wv where wv.studyId = 1`)
	d, err := ExtractStored(s.LFM, res.Rows[0][0].L, region.Empty(s.Curve))
	if err != nil || d.NumVoxels() != 0 {
		t.Errorf("empty extraction: %v, %v", d, err)
	}
}

func TestRunQueryEndToEnd(t *testing.T) {
	s := testSystem(t)
	spec := QuerySpec{StudyID: 1, Atlas: "Talairach", Structure: "ntal"}
	res, err := s.RunQuery(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := s.Atlas.ByName("ntal")
	if res.Data.Region.NumVoxels() != st.Region.NumVoxels() {
		t.Errorf("voxels = %d, want %d", res.Data.Region.NumVoxels(), st.Region.NumVoxels())
	}
	tm := res.Timing
	if tm.LFMPages == 0 || tm.NetMessages == 0 || tm.TotalSim == 0 {
		t.Errorf("timing incomplete: %+v", tm)
	}
	if res.Meta.Patient == "" || res.Meta.N != s.Side() {
		t.Errorf("meta = %+v", res.Meta)
	}
	if res.Image == nil || res.Image.W != s.Side() {
		t.Error("no rendered image")
	}
}

func TestRunQueryErrors(t *testing.T) {
	s := testSystem(t)
	if _, err := s.RunQuery(QuerySpec{StudyID: 99, Atlas: "Talairach", FullStudy: true}); err == nil {
		t.Error("unknown study accepted")
	}
	if _, err := s.RunQuery(QuerySpec{StudyID: 1, Atlas: "Nowhere", FullStudy: true}); err == nil {
		t.Error("unknown atlas accepted")
	}
	if _, err := s.RunQuery(QuerySpec{StudyID: 1, Atlas: "Talairach"}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := s.RunQuery(QuerySpec{StudyID: 1, Atlas: "Talairach", Structure: "no-such"}); err == nil {
		t.Error("unknown structure accepted")
	}
	// A band that matches no precomputed intensityBand row used to be an
	// error; it now degrades to recomputing the band from the stored
	// VOLUME and succeeds with a warning.
	res, err := s.RunQuery(QuerySpec{StudyID: 1, Atlas: "Talairach", HasBand: true, BandLo: 3, BandHi: 9})
	if err != nil {
		t.Fatalf("unaligned band: %v", err)
	}
	if !res.Meta.Degraded || res.Meta.Warning == "" {
		t.Errorf("unaligned band not marked degraded: %+v", res.Meta)
	}
	if res.Data == nil || res.Data.Region.Empty() {
		t.Error("degraded band result empty")
	}
	// An out-of-range band is still a hard error, not degradable.
	if _, err := s.RunQuery(QuerySpec{StudyID: 1, Atlas: "Talairach", HasBand: true, BandLo: 9, BandHi: 3}); err == nil {
		t.Error("inverted band accepted")
	}
}

func TestRunQueryCached(t *testing.T) {
	s := testSystem(t)
	spec := QuerySpec{StudyID: 1, Atlas: "Talairach", Structure: "putamen"}
	_, cached, err := s.RunQueryCached(spec)
	if err != nil || cached {
		t.Fatalf("first call cached=%v err=%v", cached, err)
	}
	pages0 := s.LFM.Stats().PageReads
	res2, cached, err := s.RunQueryCached(spec)
	if err != nil || !cached {
		t.Fatalf("second call cached=%v err=%v", cached, err)
	}
	if s.LFM.Stats().PageReads != pages0 {
		t.Error("cached query touched the database")
	}
	if res2.Data.Region.Empty() {
		t.Error("cached result empty")
	}
}

func TestTable3ShapeMatchesPaper(t *testing.T) {
	s := testSystem(t)
	rows, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	q := func(i int) QueryTiming { return rows[i-1] }

	// Q1 ships the whole volume: most result voxels, most messages,
	// slowest simulated total. (Page counts only separate on the full
	// 128^3 grid — the 32^3 test volume is 8 pages, smaller than the
	// region encodings — so data traffic is the scale-free check here;
	// the benchmark harness exercises the page ordering at full scale.)
	for i := 2; i <= 6; i++ {
		if q(i).Voxels >= q(1).Voxels {
			t.Errorf("Q%d voxels (%d) >= Q1 voxels (%d)", i, q(i).Voxels, q(1).Voxels)
		}
		if q(i).NetMessages >= q(1).NetMessages {
			t.Errorf("Q%d messages (%d) >= Q1 messages (%d)", i, q(i).NetMessages, q(1).NetMessages)
		}
		if q(i).TotalSim > q(1).TotalSim {
			t.Errorf("Q%d sim total > Q1 (early filtering must pay off)", i)
		}
	}
	// Q1 voxel count is the full grid.
	if q(1).Voxels != s.Curve.Length() || q(1).HRuns != 1 {
		t.Errorf("Q1 = %d voxels %d runs", q(1).Voxels, q(1).HRuns)
	}
	// Q6 (mixed) returns a subset of both Q4 and Q5.
	if q(6).Voxels > q(4).Voxels || q(6).Voxels > q(5).Voxels {
		t.Errorf("Q6 voxels (%d) exceed Q4 (%d) or Q5 (%d)", q(6).Voxels, q(4).Voxels, q(5).Voxels)
	}
	// Q4 (hemisphere) is much bigger than Q3 (ntal).
	if q(4).Voxels <= q(3).Voxels {
		t.Errorf("Q4 voxels (%d) <= Q3 voxels (%d)", q(4).Voxels, q(3).Voxels)
	}
}

func TestTable4Ordering(t *testing.T) {
	s := testSystem(t)
	rows, err := s.Table4(128, 159)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// All encodings compute the same result region.
	if rows[0].ResultVox != rows[1].ResultVox || rows[1].ResultVox != rows[2].ResultVox {
		t.Errorf("results differ across encodings: %d %d %d",
			rows[0].ResultVox, rows[1].ResultVox, rows[2].ResultVox)
	}
	// The paper's ordering: h-runs cost fewer I/Os than z-runs, and
	// z-runs fewer than octants is its measured trend — at minimum
	// Hilbert must win.
	if rows[0].LFMPages > rows[1].LFMPages || rows[0].LFMPages > rows[2].LFMPages {
		t.Errorf("h-runs I/O (%d) not minimal (z=%d oct=%d)",
			rows[0].LFMPages, rows[1].LFMPages, rows[2].LFMPages)
	}
	t.Logf("Table4 pages: h=%d z=%d oct=%d", rows[0].LFMPages, rows[1].LFMPages, rows[2].LFMPages)
}

func TestRunRatiosShape(t *testing.T) {
	s := testSystem(t)
	rep, err := s.RunRatios()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 12 {
		t.Fatalf("only %d experiment regions", len(rep.Rows))
	}
	// Paper: 1 : 1.27 : 1.61 : 2.42. Directionally: z > 1, oblong > z,
	// octants > oblong.
	if rep.ZPerH <= 1.0 {
		t.Errorf("z/h ratio = %.2f, want > 1", rep.ZPerH)
	}
	if rep.OblongPerH <= rep.ZPerH {
		t.Errorf("oblong/h (%.2f) <= z/h (%.2f)", rep.OblongPerH, rep.ZPerH)
	}
	if rep.OctPerH <= rep.OblongPerH {
		t.Errorf("oct/h (%.2f) <= oblong/h (%.2f)", rep.OctPerH, rep.OblongPerH)
	}
	// Fits should be strong, as in the paper.
	for name, r := range map[string]float64{"z": rep.RZ, "oblong": rep.ROblong, "oct": rep.ROct} {
		if r < 0.9 {
			t.Errorf("correlation %s = %.3f, want > 0.9", name, r)
		}
	}
	t.Logf("ratios 1 : %.2f : %.2f : %.2f (paper 1 : 1.27 : 1.61 : 2.42)",
		rep.ZPerH, rep.OblongPerH, rep.OctPerH)
}

func TestDeltaLawShape(t *testing.T) {
	s := testSystem(t)
	rows, err := s.DeltaLaw()
	if err != nil {
		t.Fatal(err)
	}
	// Mean alpha should be positive and in a broad band around the
	// paper's 1.5-1.7 (small grids skew it).
	var mean float64
	for _, r := range rows {
		mean += r.Fit.Alpha
	}
	mean /= float64(len(rows))
	// On the 32^3 test grid regions are tiny and the fitted exponent is
	// much flatter than the paper's 128^3 value of 1.5-1.7; here we only
	// require a decaying power law. The benchmark harness measures the
	// full-scale exponent.
	if mean <= 0.05 || mean > 3.5 {
		t.Errorf("mean alpha = %.2f, want a decaying power law", mean)
	}
	t.Logf("mean alpha = %.2f over %d regions (paper 1.5-1.7)", mean, len(rows))
}

func TestSizesShape(t *testing.T) {
	s := testSystem(t)
	rep, err := s.Sizes()
	if err != nil {
		t.Fatal(err)
	}
	// Elias must be the smallest and close-ish to entropy; octant the
	// largest; naive and oblong in between — Figure 4's ordering.
	if rep.EliasPerEntropy < 1.0 {
		t.Errorf("elias below entropy bound: %.2f", rep.EliasPerEntropy)
	}
	if rep.EliasPerEntropy > 3.0 {
		t.Errorf("elias/entropy = %.2f, want near paper's 1.17", rep.EliasPerEntropy)
	}
	if rep.NaivePerEntropy <= rep.EliasPerEntropy {
		t.Error("naive not larger than elias")
	}
	if rep.OctPerEntropy <= rep.OblongPerEntropy {
		t.Error("octant not larger than oblong octant")
	}
	t.Logf("1 : %.2f : %.2f : %.2f : %.2f (paper 1 : 1.17 : 9.50 : 10.4 : 17.8)",
		rep.EliasPerEntropy, rep.NaivePerEntropy, rep.OblongPerEntropy, rep.OctPerEntropy)
}

func TestMingapSweep(t *testing.T) {
	s := testSystem(t)
	rows, err := s.MingapSweep([]uint64{1, 4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Run ratio decreases with mingap; inflation increases.
	for i := 1; i < len(rows); i++ {
		if rows[i].MeanRunRatio > rows[i-1].MeanRunRatio {
			t.Errorf("run ratio not monotone: %+v", rows)
		}
		if rows[i].MeanInflation < rows[i-1].MeanInflation {
			t.Errorf("inflation not monotone: %+v", rows)
		}
	}
	if rows[0].MeanRunRatio != 1 || rows[0].MeanInflation != 1 {
		t.Errorf("mingap=1 must be exact: %+v", rows[0])
	}
}

func TestDataRegionMarshalRoundTrip(t *testing.T) {
	s := testSystem(t)
	rng := rand.New(rand.NewSource(3))
	ids := make([]uint64, 500)
	for i := range ids {
		ids[i] = rng.Uint64() % s.Curve.Length()
	}
	r, _ := region.FromIDs(s.Curve, ids)
	vals := make([]byte, r.NumVoxels())
	rng.Read(vals)
	d := &volume.DataRegion{Region: r, Values: vals}
	for _, m := range []rencode.Method{rencode.Naive, rencode.Elias} {
		blob, err := MarshalDataRegion(d, m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalDataRegion(blob)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Region.Equal(r) {
			t.Fatal("region changed")
		}
		for i := range vals {
			if back.Values[i] != vals[i] {
				t.Fatal("values changed")
			}
		}
	}
}

func TestDataRegionMarshalErrors(t *testing.T) {
	s := testSystem(t)
	r := region.Full(s.Curve)
	d := &volume.DataRegion{Region: r, Values: []byte{1, 2}} // wrong count
	if _, err := MarshalDataRegion(d, rencode.Naive); err == nil {
		t.Error("mismatched values accepted")
	}
	if _, err := UnmarshalDataRegion([]byte{1, 2, 3}); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := UnmarshalDataRegion(nil); err == nil {
		t.Error("nil accepted")
	}
	// Valid tag, truncated region.
	blob, _ := MarshalDataRegion(&volume.DataRegion{Region: region.Empty(s.Curve)}, rencode.Naive)
	if _, err := UnmarshalDataRegion(blob[:5]); err == nil {
		t.Error("truncated region accepted")
	}
}

func TestSpatialUDFsViaSQL(t *testing.T) {
	s := testSystem(t)
	// contains(hemisphere, putamen-in-left-hemisphere?) — putamen is at
	// x≈0.38 so inside ntal1 (left, x<0.5).
	res := s.DB.MustExec(`
select contains(h.region, p.region)
from atlasStructure h, neuralStructure nh, atlasStructure p, neuralStructure np
where h.structureId = nh.structureId and nh.structureName = 'ntal1'
  and p.structureId = np.structureId and np.structureName = 'putamen'`)
	if v := res.Rows[0][0]; v.T != sdb.TBool || !v.B {
		t.Errorf("contains(ntal1, putamen) = %v", v)
	}
	// numVoxels/numRuns agree with the atlas.
	st, _ := s.Atlas.ByName("thalamus")
	res = s.DB.MustExec(`
select numVoxels(as.region), numRuns(as.region)
from atlasStructure as, neuralStructure ns
where as.structureId = ns.structureId and ns.structureName = 'thalamus'`)
	if uint64(res.Rows[0][0].I) != st.Region.NumVoxels() || int(res.Rows[0][1].I) != st.Region.NumRuns() {
		t.Errorf("numVoxels/numRuns = %v/%v", res.Rows[0][0], res.Rows[0][1])
	}
	// union and difference behave like set algebra.
	res = s.DB.MustExec(`
select numVoxels(unionRegion(a.region, b.region)),
       numVoxels(differenceRegion(a.region, b.region)),
       numVoxels(intersection(a.region, b.region))
from atlasStructure a, neuralStructure na, atlasStructure b, neuralStructure nb
where a.structureId = na.structureId and na.structureName = 'ntal1'
  and b.structureId = nb.structureId and nb.structureName = 'ntal2'`)
	left, _ := s.Atlas.ByName("ntal1")
	right, _ := s.Atlas.ByName("ntal2")
	wantUnion := left.Region.NumVoxels() + right.Region.NumVoxels()
	if uint64(res.Rows[0][0].I) != wantUnion {
		t.Errorf("union voxels = %d, want %d", res.Rows[0][0].I, wantUnion)
	}
	if uint64(res.Rows[0][1].I) != left.Region.NumVoxels() {
		t.Errorf("difference voxels = %d, want %d", res.Rows[0][1].I, left.Region.NumVoxels())
	}
	if res.Rows[0][2].I != 0 {
		t.Errorf("hemisphere intersection = %d, want 0", res.Rows[0][2].I)
	}
	// avgIntensity over an extraction is within [0,255].
	res = s.DB.MustExec(`
select avgIntensity(extractVoxels(wv.data, as.region))
from warpedVolume wv, atlasStructure as, neuralStructure ns
where wv.studyId = 1 and wv.atlasId = as.atlasId
  and as.structureId = ns.structureId and ns.structureName = 'ntal'`)
	mean := res.Rows[0][0].F
	if mean <= 0 || mean >= 255 {
		t.Errorf("avgIntensity = %v", mean)
	}
}

func TestUDFTypeErrors(t *testing.T) {
	s := testSystem(t)
	bad := []string{
		`select extractVoxels(wv.studyId, wv.data) from warpedVolume wv where wv.studyId = 1`,
		`select fullVolume(wv.studyId) from warpedVolume wv where wv.studyId = 1`,
		`select boxRegion(1, 2, 3, 4, 5, 'x') from warpedVolume wv where wv.studyId = 1`,
		`select boxRegion(9999, 0, 0, 3, 3, 3) from warpedVolume wv where wv.studyId = 1`,
		`select avgIntensity(wv.studyId) from warpedVolume wv where wv.studyId = 1`,
		`select numVoxels(wv.studyId) from warpedVolume wv where wv.studyId = 1`,
	}
	for _, sql := range bad {
		if _, err := s.DB.Exec(sql); err == nil {
			t.Errorf("accepted: %s", sql)
		}
	}
}

func TestVoxelwiseMeanAcrossStudies(t *testing.T) {
	// The paper's envisioned multi-study aggregate: voxel-wise average
	// inside ntal across all PET studies, computed through the stored
	// volumes.
	s := testSystem(t)
	st, _ := s.Atlas.ByName("ntal")
	var vols []*volume.Volume
	for _, id := range s.PETStudyIDs() {
		res := s.DB.MustExec(`select wv.data from warpedVolume wv where wv.studyId = ` + itoa(id))
		data, err := s.LFM.Read(res.Rows[0][0].L)
		if err != nil {
			t.Fatal(err)
		}
		v, err := volume.New(s.Curve, data)
		if err != nil {
			t.Fatal(err)
		}
		vols = append(vols, v)
	}
	mean, err := volume.VoxelwiseMean(st.Region, vols)
	if err != nil {
		t.Fatal(err)
	}
	if mean.NumVoxels() != st.Region.NumVoxels() {
		t.Errorf("mean voxels = %d", mean.NumVoxels())
	}
	stats := mean.Stats()
	if stats.Mean <= 0 {
		t.Errorf("mean of means = %v", stats.Mean)
	}
}

func itoa(i int) string { return fmt_itoa(i) }

// fmt_itoa avoids importing strconv just for tests.
func fmt_itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for ; i > 0; i /= 10 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
	}
	return string(digits)
}
