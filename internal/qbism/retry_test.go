package qbism

import (
	"strings"
	"testing"
	"time"

	"qbism/internal/faultsim"
	"qbism/internal/rencode"
	"qbism/internal/transport"
)

// nominalBackoff is the un-jittered schedule the docs promise: attempt
// k waits around base·2^(k-1), capped at max — including a first
// attempt whose base already exceeds the cap.
func nominalBackoff(base, max time.Duration, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= max {
			break
		}
	}
	if d > max {
		d = max
	}
	return d
}

// TestBackoffSchedule pins the cap behavior at the boundaries: exact
// power-of-two caps, caps that fall between doublings, and a base
// already above the cap (which must clamp on the very first retry).
func TestBackoffSchedule(t *testing.T) {
	cases := []struct {
		name      string
		base, max time.Duration
		attempts  int
	}{
		{"default-shape", 50 * time.Millisecond, 2 * time.Second, 10},
		{"cap-at-power-of-two", 50 * time.Millisecond, 100 * time.Millisecond, 6},
		{"cap-between-doublings", 50 * time.Millisecond, 120 * time.Millisecond, 6},
		{"base-above-cap", 500 * time.Millisecond, 100 * time.Millisecond, 4},
		{"one-nanosecond-base", 1, 8, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pol := RetryPolicy{MaxAttempts: tc.attempts, BaseBackoff: tc.base, MaxBackoff: tc.max}
			rng := faultsim.NewRand(42)
			for attempt := 1; attempt <= tc.attempts; attempt++ {
				d := nominalBackoff(tc.base, tc.max, attempt)
				got := pol.Backoff(attempt, rng)
				if got < d/2 || got >= d {
					t.Errorf("attempt %d: backoff %v outside [%v, %v)", attempt, got, d/2, d)
				}
				if got > tc.max {
					t.Errorf("attempt %d: backoff %v exceeds cap %v", attempt, got, tc.max)
				}
			}
		})
	}
}

// TestBackoffJitterSpreads: the jitter must actually spread across the
// [d/2, d) window, not cluster at an endpoint.
func TestBackoffJitterSpreads(t *testing.T) {
	pol := RetryPolicy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second}
	rng := faultsim.NewRand(7)
	lowHalf, highHalf := 0, 0
	for i := 0; i < 400; i++ {
		got := pol.Backoff(1, rng)
		switch {
		case got < 50*time.Millisecond || got >= 100*time.Millisecond:
			t.Fatalf("draw %d: %v outside [50ms, 100ms)", i, got)
		case got < 75*time.Millisecond:
			lowHalf++
		default:
			highHalf++
		}
	}
	if lowHalf == 0 || highHalf == 0 {
		t.Errorf("jitter degenerate: %d draws below the midpoint, %d above", lowHalf, highHalf)
	}
}

// TestBackoffDeterministic: the same seed yields the same schedule.
func TestBackoffDeterministic(t *testing.T) {
	pol := RetryPolicy{BaseBackoff: 50 * time.Millisecond, MaxBackoff: 2 * time.Second}
	a, b := faultsim.NewRand(99), faultsim.NewRand(99)
	for attempt := 1; attempt <= 8; attempt++ {
		if x, y := pol.Backoff(attempt, a), pol.Backoff(attempt, b); x != y {
			t.Fatalf("attempt %d: %v vs %v from identical seeds", attempt, x, y)
		}
	}
}

// TestRetryPolicyDefaults: zero fields fill in; a zero policy is a
// single attempt, never zero.
func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.WithDefaults()
	if p.MaxAttempts != 1 {
		t.Errorf("zero policy MaxAttempts = %d, want 1", p.MaxAttempts)
	}
	if p.BaseBackoff <= 0 || p.MaxBackoff <= 0 {
		t.Errorf("defaults left non-positive backoff: %+v", p)
	}
	p = RetryPolicy{MaxAttempts: -3}.WithDefaults()
	if p.MaxAttempts != 1 {
		t.Errorf("negative MaxAttempts = %d after defaults, want 1", p.MaxAttempts)
	}
}

// TestQueryJitterSeedMixing: distinct query keys get distinct jitter
// streams; the same key replays the same stream.
func TestQueryJitterSeedMixing(t *testing.T) {
	a := transport.JitterSeed(1, "study=1/full")
	b := transport.JitterSeed(1, "study=2/full")
	if a == b {
		t.Error("different keys produced the same jitter seed")
	}
	if a != transport.JitterSeed(1, "study=1/full") {
		t.Error("same key produced different jitter seeds")
	}
	if a == transport.JitterSeed(2, "study=1/full") {
		t.Error("policy seed does not influence the jitter seed")
	}
}

// retryTestSystem builds a small system with an exact link fault
// schedule and the given retry policy.
func retryTestSystem(t *testing.T, pol RetryPolicy, schedule []faultsim.Scheduled) *System {
	t.Helper()
	cfg := Config{
		Bits: 4, NumPET: 1, NumMRI: 0, Seed: 5,
		Method: rencode.Naive, SmallStudies: true, StoreRaw: true,
		Retry:      pol,
		LinkFaults: &faultsim.Policy{Schedule: schedule},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRetryStatsAccounting drops exactly the first two attempts and
// checks the stats to the nanosecond: Attempts counts every dial,
// Retries counts only the failed-then-retried ones, and BackoffSim is
// the exact jittered schedule replayed from the query's seed.
func TestRetryStatsAccounting(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 4, BaseBackoff: 50 * time.Millisecond, MaxBackoff: 2 * time.Second, Seed: 3}
	// One drop decision per request crossing: attempts 1 and 2 die on
	// the wire, attempt 3's request (op 3) and response (op 4) are clean.
	s := retryTestSystem(t, pol, []faultsim.Scheduled{
		{Op: 1, Kind: faultsim.Drop},
		{Op: 2, Kind: faultsim.Drop},
	})
	spec := QuerySpec{StudyID: s.Studies[0].StudyID, Atlas: "Talairach", FullStudy: true}
	res, err := s.RunQuery(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retry.Attempts != 3 || res.Retry.Retries != 2 {
		t.Errorf("Attempts/Retries = %d/%d, want 3/2", res.Retry.Attempts, res.Retry.Retries)
	}
	// Replay the jitter stream: the loop draws one backoff after each
	// failed attempt, from a stream seeded by (policy seed, query key).
	rng := faultsim.NewRand(transport.JitterSeed(pol.Seed, spec.Key()))
	want := pol.Backoff(1, rng) + pol.Backoff(2, rng)
	if res.Retry.BackoffSim != want {
		t.Errorf("BackoffSim = %v, want exactly %v", res.Retry.BackoffSim, want)
	}
	// LastError keeps the most recent *failed* attempt even when a later
	// attempt succeeds — that is its documented contract.
	if !strings.Contains(res.Retry.LastError, "drop") {
		t.Errorf("LastError = %q, want the dropped attempt's error", res.Retry.LastError)
	}
	if got := s.Metrics.Counter("qbism_retries_total").Value(); got != 2 {
		t.Errorf("qbism_retries_total = %d, want 2", got)
	}
}

// TestRetryStatsExhaustion: when every attempt drops, the final error
// carries the stats — MaxAttempts dials, MaxAttempts-1 retries (the
// last failure is terminal, not retried), and a populated LastError.
func TestRetryStatsExhaustion(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 3, BaseBackoff: 50 * time.Millisecond, MaxBackoff: 2 * time.Second, Seed: 3}
	s := retryTestSystem(t, pol, []faultsim.Scheduled{
		{Op: 1, Kind: faultsim.Drop},
		{Op: 2, Kind: faultsim.Drop},
		{Op: 3, Kind: faultsim.Drop},
		{Op: 4, Kind: faultsim.Drop},
	})
	spec := QuerySpec{StudyID: s.Studies[0].StudyID, Atlas: "Talairach", FullStudy: true}
	_, err := s.RunQuery(spec)
	if err == nil {
		t.Fatal("query succeeded with every attempt dropped")
	}
	if !strings.Contains(err.Error(), "drop") {
		t.Errorf("exhaustion error does not name the fault: %v", err)
	}
	if got := s.Metrics.Counter("qbism_retries_total").Value(); got != 2 {
		t.Errorf("qbism_retries_total = %d, want 2 (third failure is terminal)", got)
	}
	if got := s.LinkFaults.Count(faultsim.Drop); got != 3 {
		t.Errorf("injector dropped %d requests, want 3 (one per attempt)", got)
	}
}
