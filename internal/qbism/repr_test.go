package qbism

import (
	"bytes"
	"fmt"
	"testing"

	"qbism/internal/rencode"
	"qbism/internal/sfc"
)

func reprBaseConfig(rencodeMode string) Config {
	return Config{
		Bits:         4,
		NumPET:       2,
		NumMRI:       1,
		Seed:         11,
		Method:       rencode.Naive,
		SmallStudies: true,
		Rencode:      rencodeMode,
	}
}

// reprQueryShapes returns one spec per §3.4 query shape against the
// given system, including a default-encoding band query (the one the
// planner resolves) and an explicitly pinned h-naive one.
func reprQueryShapes(s *System) []QuerySpec {
	study := s.Studies[0].StudyID
	bands := s.BandRegions[study]
	b := bands[len(bands)/2]
	return []QuerySpec{
		{StudyID: study, Atlas: "Talairach", FullStudy: true},
		{StudyID: study, Atlas: "Talairach", Box: &[6]uint32{1, 1, 1, 9, 9, 9}},
		{StudyID: study, Atlas: "Talairach", Structure: "ntal"},
		{StudyID: study, Atlas: "Talairach", HasBand: true, BandLo: int(b.Lo), BandHi: int(b.Hi)},
		{StudyID: study, Atlas: "Talairach", HasBand: true, BandLo: int(b.Lo), BandHi: int(b.Hi),
			Encoding: EncHilbertNaive},
		{StudyID: study, Atlas: "Talairach", Structure: "ntal",
			HasBand: true, BandLo: int(b.Lo), BandHi: int(b.Hi)},
	}
}

// TestReprDifferentialAutoVsRuns is the acceptance differential: every
// query shape answers byte-identically whether the system stores and
// resolves planner-selected representations (auto) or reproduces the
// seed's all-runs layout. The representation is invisible in results —
// only sizes and probe costs may differ.
func TestReprDifferentialAutoVsRuns(t *testing.T) {
	auto, err := New(reprBaseConfig(RencodeAuto))
	if err != nil {
		t.Fatal(err)
	}
	runs, err := New(reprBaseConfig(RencodeRuns))
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range reprQueryShapes(auto) {
		ra, err := auto.RunQuery(spec)
		if err != nil {
			t.Fatalf("shape %d (%s) on auto: %v", i, spec.Label(), err)
		}
		rr, err := runs.RunQuery(spec)
		if err != nil {
			t.Fatalf("shape %d (%s) on runs: %v", i, spec.Label(), err)
		}
		if !bytes.Equal(marshalResult(t, auto, ra), marshalResult(t, runs, rr)) {
			t.Errorf("shape %d (%s): auto result differs from runs baseline", i, spec.Label())
		}
	}
}

// TestReprForcedK3Differential pins the forced mode: with every REGION
// stored as a k³-tree (bands and structures), all query shapes still
// answer byte-identically to the runs baseline, and the probe counter
// proves the compressed fast path actually ran.
func TestReprForcedK3Differential(t *testing.T) {
	k3, err := New(reprBaseConfig(EncK3Tree))
	if err != nil {
		t.Fatal(err)
	}
	runs, err := New(reprBaseConfig(RencodeRuns))
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range reprQueryShapes(k3) {
		rk, err := k3.RunQuery(spec)
		if err != nil {
			t.Fatalf("shape %d (%s) on k3: %v", i, spec.Label(), err)
		}
		rr, err := runs.RunQuery(spec)
		if err != nil {
			t.Fatalf("shape %d (%s) on runs: %v", i, spec.Label(), err)
		}
		if !bytes.Equal(marshalResult(t, k3, rk), marshalResult(t, runs, rr)) {
			t.Errorf("shape %d (%s): forced-k3 result differs from runs baseline", i, spec.Label())
		}
	}
	if k3.Metrics.Counter(metricRegionProbes).Value() == 0 {
		t.Error("forced-k3 queries never took the compressed probe fast path")
	}
}

// TestBandReprPicksRecorded checks the load-time pick bookkeeping: in
// auto mode every stored band has a recorded resolution matching a
// fresh run of the pure policy, and the census adds up.
func TestBandReprPicksRecorded(t *testing.T) {
	s, err := New(reprBaseConfig(RencodeAuto))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, st := range s.Studies {
		for _, b := range s.BandRegions[st.StudyID] {
			total++
			got := s.bandEncoding(st.StudyID, int(b.Lo), int(b.Hi))
			want, err := pickBandRepr(b, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("study %d band [%d,%d]: recorded %q, policy says %q",
					st.StudyID, b.Lo, b.Hi, got, want)
			}
		}
	}
	counts := s.BandReprCounts()
	if n := counts[EncHilbertNaive] + counts[EncK3Tree]; n != total {
		t.Errorf("census counts %d bands, system stores %d", n, total)
	}
	// Unknown bands resolve to the seed default.
	if enc := s.bandEncoding(999, 0, 1); enc != EncHilbertNaive {
		t.Errorf("unknown band resolves to %q, want %q", enc, EncHilbertNaive)
	}
}

// TestAdaptBandRepr drives the feedback loop: a decode-heavy observed
// workload pushes picks toward runs, a probe-heavy one pushes them back,
// and the two adaptations change the same set of bands. Non-auto modes
// never adapt.
func TestAdaptBandRepr(t *testing.T) {
	s, err := New(reprBaseConfig(RencodeAuto))
	if err != nil {
		t.Fatal(err)
	}
	// All-decode workload: bands whose k³-tree is larger than the runs
	// encoding (but within slack) must flip to h-naive.
	s.Metrics.Counter(metricRegionDecodes).Add(1000)
	toRuns, err := s.AdaptBandRepr()
	if err != nil {
		t.Fatal(err)
	}
	// All-probe workload flips exactly those bands back.
	s.Metrics.Counter(metricRegionProbes).Add(1_000_000)
	toK3, err := s.AdaptBandRepr()
	if err != nil {
		t.Fatal(err)
	}
	if toRuns != toK3 {
		t.Errorf("decode-heavy adaptation changed %d bands, probe-heavy changed %d back", toRuns, toK3)
	}
	// Adaptation is idempotent under an unchanged workload.
	again, err := s.AdaptBandRepr()
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Errorf("repeated adaptation changed %d bands, want 0", again)
	}

	pinned, err := New(reprBaseConfig(RencodeRuns))
	if err != nil {
		t.Fatal(err)
	}
	pinned.Metrics.Counter(metricRegionProbes).Add(1_000_000)
	if n, err := pinned.AdaptBandRepr(); err != nil || n != 0 {
		t.Errorf("runs mode adapted %d bands (err %v), want 0", n, err)
	}
}

// TestRencodeValidation: an unknown mode fails at construction, and
// each valid spelling loads.
func TestRencodeValidation(t *testing.T) {
	cfg := reprBaseConfig("bogus")
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted Rencode \"bogus\"")
	}
	for _, mode := range []string{RencodeAuto, RencodeRuns, EncK3Tree, "elias"} {
		if _, err := New(reprBaseConfig(mode)); err != nil {
			t.Errorf("New rejected Rencode %q: %v", mode, err)
		}
	}
}

// TestExplainSpecBandRepr pins the EXPLAIN annotation: default band
// queries lead with the planner's pick, explicit ones with the forced
// label; non-band queries carry no annotation.
func TestExplainSpecBandRepr(t *testing.T) {
	s, err := New(reprBaseConfig(RencodeAuto))
	if err != nil {
		t.Fatal(err)
	}
	study := s.Studies[0].StudyID
	b := s.BandRegions[study][0]
	spec := QuerySpec{StudyID: study, Atlas: "Talairach", HasBand: true,
		BandLo: int(b.Lo), BandHi: int(b.Hi)}

	lines, err := s.ExplainSpec(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("band repr: %s (planner-selected)",
		s.bandEncoding(study, int(b.Lo), int(b.Hi)))
	if len(lines) == 0 || lines[0] != want {
		t.Errorf("explain leads with %q, want %q", lines[0], want)
	}

	spec.Encoding = EncHilbertNaive
	lines, err = s.ExplainSpec(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if want := "band repr: h-naive (forced)"; len(lines) == 0 || lines[0] != want {
		t.Errorf("explicit-encoding explain leads with %q, want %q", lines[0], want)
	}

	lines, err = s.ExplainSpec(QuerySpec{StudyID: study, Atlas: "Talairach", FullStudy: true}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) > 0 && bytes.HasPrefix([]byte(lines[0]), []byte("band repr:")) {
		t.Errorf("non-band query carries a repr annotation: %q", lines[0])
	}
}

// TestContainsPointUDF exercises the point-membership probe through
// SQL against both a compressed and a materialized structure REGION,
// cross-checked against the atlas geometry.
func TestContainsPointUDF(t *testing.T) {
	for _, mode := range []string{RencodeRuns, EncK3Tree} {
		s, err := New(reprBaseConfig(mode))
		if err != nil {
			t.Fatal(err)
		}
		st := s.Atlas.Structures[0]
		probes := 0
		for _, pt := range []struct{ x, y, z uint32 }{
			{0, 0, 0}, {3, 3, 3}, {7, 7, 7}, {8, 8, 8}, {12, 5, 9},
		} {
			res, err := s.DB.Exec(fmt.Sprintf(
				"select containsPoint(as.region, %d, %d, %d) from atlasStructure as where as.structureId = %d",
				pt.x, pt.y, pt.z, st.ID))
			if err != nil {
				t.Fatalf("mode %s: %v", mode, err)
			}
			if len(res.Rows) != 1 {
				t.Fatalf("mode %s: %d rows", mode, len(res.Rows))
			}
			got := res.Rows[0][0].B
			want := st.Region.ContainsPoint(sfc.Pt(pt.x, pt.y, pt.z))
			if got != want {
				t.Errorf("mode %s: containsPoint(%d,%d,%d) = %v, want %v",
					mode, pt.x, pt.y, pt.z, got, want)
			}
			probes++
		}
		if probes == 0 {
			t.Fatal("no probes ran")
		}
		if mode == EncK3Tree && s.Metrics.Counter(metricRegionProbes).Value() == 0 {
			t.Error("forced-k3 containsPoint never took the probe fast path")
		}
		// Out-of-range coordinates are a typed error, not a panic.
		if _, err := s.DB.Exec(fmt.Sprintf(
			"select containsPoint(as.region, 99, 0, 0) from atlasStructure as where as.structureId = %d",
			st.ID)); err == nil {
			t.Errorf("mode %s: out-of-range coordinate accepted", mode)
		}
	}
}
