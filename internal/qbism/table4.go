package qbism

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table4Row is one row of Table 4: the multi-study n-way intersection
// under one REGION encoding method.
type Table4Row struct {
	Encoding    string
	NumStudies  int
	LFMPages    uint64
	CPUMeasured time.Duration
	RealSim     time.Duration
	ResultRuns  int
	ResultVox   uint64
}

// Table4 runs the multi-study query of Section 6.3 — "compute the REGION
// in which all PET studies consistently have intensities in the range
// [lo, hi]" — once per band encoding, and reports I/O and time. The
// system must have been built with ExtraBandEncodings.
func (s *System) Table4(bandLo, bandHi int) ([]Table4Row, error) {
	pets := s.PETStudyIDs()
	if len(pets) < 2 {
		return nil, fmt.Errorf("qbism: Table 4 needs at least 2 PET studies, have %d", len(pets))
	}
	var rows []Table4Row
	for _, enc := range []string{EncHilbertNaive, EncZNaive, EncOctant} {
		row, err := s.table4One(pets, bandLo, bandHi, enc)
		if err != nil {
			return nil, fmt.Errorf("qbism: Table 4 %s: %w", enc, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table4One runs the multi-study intersection under a single encoding
// (for targeted benchmarks and ablations).
func (s *System) Table4One(bandLo, bandHi int, encoding string) (Table4Row, error) {
	pets := s.PETStudyIDs()
	if len(pets) < 2 {
		return Table4Row{}, fmt.Errorf("qbism: need at least 2 PET studies, have %d", len(pets))
	}
	return s.table4One(pets, bandLo, bandHi, encoding)
}

// table4One executes the n-way intersection for one encoding. The
// generated SQL joins intensityBand once per study and calls the
// variadic nIntersect UDF, as a Starburst query with n joins would.
func (s *System) table4One(studies []int, bandLo, bandHi int, encoding string) (Table4Row, error) {
	var selectArgs, froms, wheres []string
	for i, id := range studies {
		a := fmt.Sprintf("ib%d", i+1)
		selectArgs = append(selectArgs, a+".region")
		froms = append(froms, "intensityBand "+a)
		wheres = append(wheres,
			fmt.Sprintf("%s.studyId = %d", a, id),
			fmt.Sprintf("%s.lo = %d", a, bandLo),
			fmt.Sprintf("%s.hi = %d", a, bandHi),
			fmt.Sprintf("%s.encoding = '%s'", a, encoding),
		)
	}
	sql := fmt.Sprintf("select nIntersect(%s)\nfrom %s\nwhere %s",
		strings.Join(selectArgs, ", "),
		strings.Join(froms, ", "),
		strings.Join(wheres, " and "))

	pages0 := s.LFM.Stats().PageReads
	start := time.Now()
	res, err := s.DB.Exec(sql)
	if err != nil {
		return Table4Row{}, err
	}
	cpu := time.Since(start)
	pages := s.LFM.Stats().PageReads - pages0
	if len(res.Rows) != 1 {
		return Table4Row{}, fmt.Errorf("expected 1 row, got %d", len(res.Rows))
	}
	out, err := regionFromValue(s.DB, res.Rows[0][0])
	if err != nil {
		return Table4Row{}, err
	}
	return Table4Row{
		Encoding:    encoding,
		NumStudies:  len(studies),
		LFMPages:    pages,
		CPUMeasured: cpu,
		RealSim:     s.Model.StarburstTime(cpu, pages),
		ResultRuns:  out.NumRuns(),
		ResultVox:   out.NumVoxels(),
	}, nil
}

// WriteTable4 formats rows like the paper's Table 4.
func WriteTable4(w io.Writer, rows []Table4Row, bandLo, bandHi int) {
	fmt.Fprintf(w, "TABLE 4. Starburst multi-study query: REGION where all %d PET studies\n", rows[0].NumStudies)
	fmt.Fprintf(w, "consistently have intensities in %d-%d, by REGION encoding method.\n\n", bandLo, bandHi)
	fmt.Fprintf(w, "%-18s %10s %12s %12s %12s %12s\n",
		"encoding", "LFM-IO", "cpu(meas)", "real(sim)", "result-runs", "result-vox")
	fmt.Fprintln(w, strings.Repeat("-", 80))
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %10d %12s %11.1fs %12d %12d\n",
			r.Encoding, r.LFMPages, fmtDur(r.CPUMeasured), r.RealSim.Seconds(), r.ResultRuns, r.ResultVox)
	}
}
