package qbism

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"qbism/internal/region"
	"qbism/internal/rencode"
	"qbism/internal/stats"
)

// NamedRegion pairs an experimental REGION with a label for reports.
type NamedRegion struct {
	Name   string
	Region *region.Region
}

// ExperimentRegions collects the REGIONs of Section 4's representation
// study: the atlas structures plus every non-trivial intensity band of
// every study (the paper's "various anatomic and intensity band
// REGIONs"). Bands covering more than half the grid (background air) are
// excluded, as they are not meaningful query regions.
func (s *System) ExperimentRegions() []NamedRegion {
	var out []NamedRegion
	for _, st := range s.Atlas.Structures {
		out = append(out, NamedRegion{Name: "structure/" + st.Name, Region: st.Region})
	}
	half := s.Curve.Length() / 2
	ids := make([]int, 0, len(s.BandRegions))
	for id := range s.BandRegions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		for _, b := range s.BandRegions[id] {
			if b.Region.Empty() || b.Region.NumVoxels() > half {
				continue
			}
			out = append(out, NamedRegion{
				Name:   fmt.Sprintf("study%d/band%d-%d", id, b.Lo, b.Hi),
				Region: b.Region,
			})
		}
	}
	return out
}

// RunRatioRow is one REGION's piece counts under the four encodings of
// the Section 4.2 comparison.
type RunRatioRow struct {
	Name          string
	HRuns         int
	ZRuns         int
	OblongOctants int
	Octants       int
}

// RunRatioReport is experiment E1: the paper's
// (#h-runs):(#z-runs):(#oblong):(#octants) = 1 : 1.27 : 1.61 : 2.42
// result with the linear-fit correlation coefficients.
type RunRatioReport struct {
	Rows                       []RunRatioRow
	ZPerH, OblongPerH, OctPerH float64 // fitted slopes through the origin
	RZ, ROblong, ROct          float64 // correlation coefficients
}

// RunRatios measures every experiment REGION under h-runs, z-runs,
// oblong octants and regular octants (the latter three in Z order, as
// classic octrees are) and fits the ratio lines.
func (s *System) RunRatios() (*RunRatioReport, error) {
	regions := s.ExperimentRegions()
	rep := &RunRatioReport{}
	var h, z, ob, oc []float64
	for _, nr := range regions {
		rz, err := nr.Region.Recode(s.ZCurve)
		if err != nil {
			return nil, err
		}
		row := RunRatioRow{
			Name:          nr.Name,
			HRuns:         nr.Region.NumRuns(),
			ZRuns:         rz.NumRuns(),
			OblongOctants: len(rz.OblongOctants()),
			Octants:       len(rz.Octants()),
		}
		rep.Rows = append(rep.Rows, row)
		h = append(h, float64(row.HRuns))
		z = append(z, float64(row.ZRuns))
		ob = append(ob, float64(row.OblongOctants))
		oc = append(oc, float64(row.Octants))
	}
	fits := []struct {
		y     []float64
		slope *float64
		r     *float64
	}{
		{z, &rep.ZPerH, &rep.RZ},
		{ob, &rep.OblongPerH, &rep.ROblong},
		{oc, &rep.OctPerH, &rep.ROct},
	}
	for _, f := range fits {
		fit, err := stats.LinearThroughOrigin(h, f.y)
		if err != nil {
			return nil, err
		}
		*f.slope = fit.Slope
		*f.r = fit.R
	}
	return rep, nil
}

// WriteRunRatios formats E1 next to the paper's numbers.
func WriteRunRatios(w io.Writer, rep *RunRatioReport) {
	fmt.Fprintln(w, "E1: piece-count ratios over atlas-structure and intensity-band REGIONs")
	fmt.Fprintf(w, "%-28s %8s %8s %8s %8s\n", "region", "h-runs", "z-runs", "oblong", "octants")
	fmt.Fprintln(w, strings.Repeat("-", 66))
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%-28s %8d %8d %8d %8d\n", truncate(r.Name, 28), r.HRuns, r.ZRuns, r.OblongOctants, r.Octants)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "fitted ratios  (#h):(#z):(#oblong):(#oct) = 1 : %.2f : %.2f : %.2f\n",
		rep.ZPerH, rep.OblongPerH, rep.OctPerH)
	fmt.Fprintf(w, "correlations   r_z=%.3f r_oblong=%.3f r_oct=%.3f\n", rep.RZ, rep.ROblong, rep.ROct)
	fmt.Fprintln(w, "paper          1 : 1.27 : 1.61 : 2.42   (r = 0.998 / 0.974 / 0.991)")
}

// DeltaLawRow is one REGION's EQ 1 power-law fit.
type DeltaLawRow struct {
	Name string
	Fit  stats.PowerLaw
}

// DeltaLaw is experiment E2: fit count = C * length^(-a) to the
// delta-length histogram of each region; the paper reports a ≈ 1.5-1.7.
func (s *System) DeltaLaw() ([]DeltaLawRow, error) {
	var out []DeltaLawRow
	for _, nr := range s.ExperimentRegions() {
		hist := rencode.DeltaHistogram(nr.Region)
		fit, err := stats.FitPowerLawBinned(hist)
		if err != nil {
			continue // degenerate region (too few distinct lengths)
		}
		out = append(out, DeltaLawRow{Name: nr.Name, Fit: fit})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("qbism: no region had enough deltas for a power-law fit")
	}
	return out, nil
}

// WriteDeltaLaw formats E2.
func WriteDeltaLaw(w io.Writer, rows []DeltaLawRow) {
	fmt.Fprintln(w, "E2: EQ 1 — delta-length distribution count = C * length^(-a)")
	fmt.Fprintf(w, "%-28s %10s %10s %8s\n", "region", "alpha", "C", "r(log)")
	fmt.Fprintln(w, strings.Repeat("-", 60))
	var alphas []float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %10.2f %10.3g %8.3f\n", truncate(r.Name, 28), r.Fit.Alpha, r.Fit.C, r.Fit.R)
		alphas = append(alphas, r.Fit.Alpha)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "mean alpha = %.2f   (paper: a ≈ 1.5-1.7)\n", stats.Mean(alphas))
}

// SizeRow is one REGION's storage cost under each method, in bytes,
// with the entropy bound.
type SizeRow struct {
	Name    string
	Entropy float64
	Elias   int
	Naive   int
	Oblong  int
	Octant  int
}

// SizeReport is experiment E3 (Figure 4): sizes relative to the entropy
// bound with through-origin fits.
type SizeReport struct {
	Rows []SizeRow
	// Slopes of size-vs-entropy fits (the paper's 1.17 / 9.50 / 10.4 / 17.8).
	EliasPerEntropy, NaivePerEntropy, OblongPerEntropy, OctPerEntropy float64
	REilias, RNaive, ROblong, ROct                                    float64
}

// Sizes measures encoded REGION sizes for E3. Oblong-octant and octant
// encodings are taken in Z order (classic linear octrees); elias and
// naive are on the Hilbert runs, matching Section 4.2's comparison.
func (s *System) Sizes() (*SizeReport, error) {
	rep := &SizeReport{}
	var ent, el, na, ob, oc []float64
	for _, nr := range s.ExperimentRegions() {
		rz, err := nr.Region.Recode(s.ZCurve)
		if err != nil {
			return nil, err
		}
		row := SizeRow{Name: nr.Name, Entropy: rencode.EntropyBound(nr.Region)}
		if row.Entropy == 0 {
			continue
		}
		if row.Elias, err = rencode.EncodedSize(rencode.Elias, nr.Region); err != nil {
			return nil, err
		}
		if row.Naive, err = rencode.EncodedSize(rencode.Naive, nr.Region); err != nil {
			return nil, err
		}
		if row.Oblong, err = rencode.EncodedSize(rencode.OblongOctant, rz); err != nil {
			return nil, err
		}
		if row.Octant, err = rencode.EncodedSize(rencode.Octant, rz); err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
		ent = append(ent, row.Entropy)
		el = append(el, float64(row.Elias))
		na = append(na, float64(row.Naive))
		ob = append(ob, float64(row.Oblong))
		oc = append(oc, float64(row.Octant))
	}
	fits := []struct {
		y     []float64
		slope *float64
		r     *float64
	}{
		{el, &rep.EliasPerEntropy, &rep.REilias},
		{na, &rep.NaivePerEntropy, &rep.RNaive},
		{ob, &rep.OblongPerEntropy, &rep.ROblong},
		{oc, &rep.OctPerEntropy, &rep.ROct},
	}
	for _, f := range fits {
		fit, err := stats.LinearThroughOrigin(ent, f.y)
		if err != nil {
			return nil, err
		}
		*f.slope = fit.Slope
		*f.r = fit.R
	}
	return rep, nil
}

// WriteSizes formats E3 next to the paper's Figure 4 ratios.
func WriteSizes(w io.Writer, rep *SizeReport) {
	fmt.Fprintln(w, "E3 (Figure 4): REGION sizes by method, relative to the entropy bound")
	fmt.Fprintf(w, "%-28s %10s %8s %9s %8s %8s\n", "region", "entropy-B", "elias", "naive", "oblong", "octant")
	fmt.Fprintln(w, strings.Repeat("-", 78))
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%-28s %10.0f %8d %9d %8d %8d\n",
			truncate(r.Name, 28), r.Entropy, r.Elias, r.Naive, r.Oblong, r.Octant)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "fitted ratios  entropy : elias : naive : oblong : octant = 1 : %.2f : %.2f : %.2f : %.2f\n",
		rep.EliasPerEntropy, rep.NaivePerEntropy, rep.OblongPerEntropy, rep.OctPerEntropy)
	fmt.Fprintf(w, "correlations   r = %.3f / %.3f / %.3f / %.3f\n", rep.REilias, rep.RNaive, rep.ROblong, rep.ROct)
	fmt.Fprintln(w, "paper          1 : 1.17 : 9.50 : 10.4 : 17.8   (r in 0.968-0.985)")
}

// MingapRow quantifies the approximate-representation trade-off of
// Section 4.2 for one mingap threshold, aggregated over the experiment
// regions.
type MingapRow struct {
	Mingap        uint64
	MeanRunRatio  float64 // runs(approx)/runs(exact)
	MeanInflation float64 // voxels(approx)/voxels(exact)
}

// MingapSweep is the ablation for the paper's approximate REGIONs:
// eliminate gaps shorter than each threshold and measure the run-count
// saving against the volume over-inclusion.
func (s *System) MingapSweep(thresholds []uint64) ([]MingapRow, error) {
	regions := s.ExperimentRegions()
	var out []MingapRow
	for _, mg := range thresholds {
		var runRatios, inflations []float64
		for _, nr := range regions {
			if nr.Region.NumRuns() == 0 {
				continue
			}
			approx := nr.Region.MergeGaps(mg)
			_, inflation, err := region.ApproxError(nr.Region, approx)
			if err != nil {
				return nil, err
			}
			runRatios = append(runRatios, float64(approx.NumRuns())/float64(nr.Region.NumRuns()))
			inflations = append(inflations, inflation)
		}
		out = append(out, MingapRow{
			Mingap:        mg,
			MeanRunRatio:  stats.Mean(runRatios),
			MeanInflation: stats.Mean(inflations),
		})
	}
	return out, nil
}

// WriteMingap formats the mingap ablation.
func WriteMingap(w io.Writer, rows []MingapRow) {
	fmt.Fprintln(w, "Mingap ablation: approximate REGIONs (Section 4.2)")
	fmt.Fprintf(w, "%8s %14s %16s\n", "mingap", "runs vs exact", "volume inflation")
	fmt.Fprintln(w, strings.Repeat("-", 42))
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %13.1f%% %15.2fx\n", r.Mingap, 100*r.MeanRunRatio, r.MeanInflation)
	}
}
