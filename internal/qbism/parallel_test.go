package qbism

import (
	"bytes"
	"testing"

	"qbism/internal/faultsim"
)

// TestRunQueriesMatchesSerial fans the whole chaos spec pool across 4
// workers and checks every result against a serial run: same order,
// same bytes, no errors. Run under -race this is also the concurrency
// proof for the full query stack (LFM mutex, link lock, read-only SQL).
func TestRunQueriesMatchesSerial(t *testing.T) {
	sys, err := New(chaosBaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	pool := chaosSpecPool(sys)
	want := make([][]byte, len(pool))
	for i, spec := range pool {
		res, err := sys.RunQuery(spec)
		if err != nil {
			t.Fatalf("serial %s: %v", spec.Label(), err)
		}
		want[i] = marshalResult(t, sys, res)
	}

	items := sys.RunQueries(pool, 4)
	if len(items) != len(pool) {
		t.Fatalf("got %d items for %d specs", len(items), len(pool))
	}
	for i, item := range items {
		if item.Spec.Key() != pool[i].Key() {
			t.Fatalf("item %d out of order: got %s, want %s", i, item.Spec.Label(), pool[i].Label())
		}
		if item.Err != nil {
			t.Fatalf("item %d (%s): %v", i, item.Spec.Label(), item.Err)
		}
		if got := marshalResult(t, sys, item.Res); !bytes.Equal(got, want[i]) {
			t.Fatalf("item %d (%s): parallel result differs from serial", i, item.Spec.Label())
		}
	}
}

// TestRunQueriesSerialFallback checks the workers<=1 and Config.Workers
// plumbing paths.
func TestRunQueriesSerialFallback(t *testing.T) {
	cfg := chaosBaseConfig()
	cfg.Workers = 3
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := chaosSpecPool(sys)[:6]
	// workers=0 defers to Config.Workers (3); workers=1 forces serial.
	for _, w := range []int{0, 1} {
		items := sys.RunQueries(pool, w)
		for i, item := range items {
			if item.Err != nil {
				t.Fatalf("workers=%d item %d: %v", w, i, item.Err)
			}
			if item.Spec.Key() != pool[i].Key() {
				t.Fatalf("workers=%d item %d out of order", w, i)
			}
		}
	}
	if items := sys.RunQueries(nil, 4); len(items) != 0 {
		t.Errorf("empty batch returned %d items", len(items))
	}
}

// TestRunQueriesUnderFaults runs a parallel batch against an injected
// fault load: every failure must be typed retryable, every success
// byte-identical to the fault-free baseline. Fault-to-query assignment
// is timing-dependent under concurrency, so this asserts outcome
// integrity, not a specific schedule; the deterministic-schedule and
// 95%-success guarantees are covered serially in chaos_test.go.
func TestRunQueriesUnderFaults(t *testing.T) {
	clean, err := New(chaosBaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	pool := chaosSpecPool(clean)
	want := make(map[string][]byte)
	for _, spec := range pool {
		res, err := clean.RunQuery(spec)
		if err != nil {
			t.Fatal(err)
		}
		want[spec.Key()] = marshalResult(t, clean, res)
	}

	cfg := chaosBaseConfig()
	cfg.CachePages = 32
	cfg.ReadGapPages = 4
	cfg.DeviceFaults = &faultsim.Policy{Seed: 77, ReadErrProb: 0.01, PageCorruptProb: 0.01}
	cfg.Retry = DefaultRetryPolicy()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var specs []QuerySpec
	for i := 0; i < 4; i++ {
		specs = append(specs, pool...)
	}
	items := sys.RunQueries(specs, 4)
	succeeded := 0
	for _, item := range items {
		if item.Err != nil {
			if !RetryableError(item.Err) {
				t.Fatalf("%s: fatal-classified error escaped: %v", item.Spec.Label(), item.Err)
			}
			continue
		}
		succeeded++
		if got := marshalResult(t, sys, item.Res); !bytes.Equal(got, want[item.Spec.Key()]) {
			t.Fatalf("%s: parallel result under faults differs from baseline", item.Spec.Label())
		}
	}
	if rate := float64(succeeded) / float64(len(items)); rate < 0.9 {
		t.Errorf("success rate %.3f under light faults (%d/%d)", rate, succeeded, len(items))
	}
}

// TestTable4ParallelMatchesSerial checks the parallel multi-study plan
// returns exactly the serial SQL plan's row: same result region, same
// total page count.
func TestTable4ParallelMatchesSerial(t *testing.T) {
	cfg := chaosBaseConfig()
	cfg.ExtraBandEncodings = true
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bands := sys.BandRegions[sys.PETStudyIDs()[0]]
	b := bands[len(bands)/2]
	for _, enc := range []string{EncHilbertNaive, EncZNaive, EncOctant} {
		serial, err := sys.Table4One(int(b.Lo), int(b.Hi), enc)
		if err != nil {
			t.Fatalf("%s serial: %v", enc, err)
		}
		par, err := sys.Table4OneParallel(int(b.Lo), int(b.Hi), enc, 4)
		if err != nil {
			t.Fatalf("%s parallel: %v", enc, err)
		}
		if par.ResultRuns != serial.ResultRuns || par.ResultVox != serial.ResultVox {
			t.Errorf("%s: parallel result %d runs/%d vox != serial %d/%d",
				enc, par.ResultRuns, par.ResultVox, serial.ResultRuns, serial.ResultVox)
		}
		if par.LFMPages != serial.LFMPages {
			t.Errorf("%s: parallel pages %d != serial %d", enc, par.LFMPages, serial.LFMPages)
		}
		if par.NumStudies != serial.NumStudies {
			t.Errorf("%s: study counts differ", enc)
		}
	}
}

// TestConsistentBandRegionErrors covers the unhappy paths.
func TestConsistentBandRegionErrors(t *testing.T) {
	sys, err := New(chaosBaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ConsistentBandRegion(nil, 0, 31, EncHilbertNaive, 2); err == nil {
		t.Error("empty study list accepted")
	}
	// A band that was never stored must fail, not silently intersect.
	if _, err := sys.ConsistentBandRegion(sys.PETStudyIDs(), 1, 2, EncHilbertNaive, 2); err == nil {
		t.Error("missing stored band accepted")
	}
}
