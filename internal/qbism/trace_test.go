package qbism

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func tracedConfig() Config {
	cfg := chaosBaseConfig()
	cfg.Trace = true
	return cfg
}

// TestTraceSpanPagesExact is the accounting acceptance check: over the
// full Table 3 suite run serially with tracing on, the "pages" counters
// summed over every query's span tree must equal the LFM's own
// PageReads delta exactly. The span tree is the I/O ledger — if it ever
// drifts from the device's accounting, a read path exists that the
// trace cannot see.
func TestTraceSpanPagesExact(t *testing.T) {
	sys, err := New(tracedConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := sys.LFM.Stats().PageReads
	var spanPages uint64
	for _, spec := range sys.Table3Queries() {
		res, err := sys.RunQuery(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Label(), err)
		}
		if res.Trace == nil {
			t.Fatalf("%s: tracing on but Trace is nil", spec.Label())
		}
		spanPages += uint64(res.Trace.SumInt("pages"))
		if got := uint64(res.Trace.SumInt("pages")); got != res.Meta.LFMPages {
			t.Errorf("%s: span pages %d != QueryMeta.LFMPages %d",
				spec.Label(), got, res.Meta.LFMPages)
		}
	}
	statsPages := sys.LFM.Stats().PageReads - before
	if spanPages != statsPages {
		t.Fatalf("span trees account %d pages, lfm.Stats says %d", spanPages, statsPages)
	}
	if spanPages == 0 {
		t.Fatal("suite read zero pages — the check is vacuous")
	}
}

// TestTraceSpanStructure pins the span model: a traced band+structure
// query produces the documented tree — query → rpc round trip with
// request/server/response legs, the two SQL phases with parse/plan/
// execute children, per-handle LFM read spans, and the DX stages.
func TestTraceSpanStructure(t *testing.T) {
	sys, err := New(tracedConfig())
	if err != nil {
		t.Fatal(err)
	}
	study := sys.Studies[0].StudyID
	b := sys.BandRegions[study][0]
	res, err := sys.RunQuery(QuerySpec{
		StudyID: study, Atlas: "Talairach", Structure: "ntal",
		HasBand: true, BandLo: int(b.Lo), BandHi: int(b.Hi),
	})
	if err != nil {
		t.Fatal(err)
	}
	root := res.Trace
	if root.Name() != "query" {
		t.Fatalf("root span is %q, want query", root.Name())
	}
	for _, want := range []string{
		"rpc.medicalQuery", "net.request", "server", "net.response",
		"sql.metadata", "sql.data", "sql.query", "sql.parse", "sql.plan",
		"sql.execute", "lfm.read", "dx.import", "dx.render",
	} {
		if root.Find(want) == nil {
			t.Errorf("span %q missing from tree:\n%s", want, root.RenderString())
		}
	}
	if root.Duration() <= 0 {
		t.Error("root span has no duration")
	}
	// The execute phase carries the operator tree with its counters.
	exec := root.Find("sql.execute")
	if len(exec.Children()) == 0 {
		t.Fatal("sql.execute has no operator spans")
	}
	data := root.Find("sql.data")
	if data.SumInt("udfCalls") == 0 {
		t.Error("data query executed no UDFs according to its spans")
	}
}

// TestUntracedQueriesCarryNoSpans checks the off switch: without
// Config.Trace the result's Trace is nil, no Tracer or SlowLog is
// allocated, and the metrics registry still counts queries.
func TestUntracedQueriesCarryNoSpans(t *testing.T) {
	sys, err := New(chaosBaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Tracer.Enabled() {
		t.Error("tracer enabled without Config.Trace")
	}
	if sys.SlowLog != nil {
		t.Error("slow log allocated without a threshold")
	}
	res, err := sys.RunQuery(QuerySpec{StudyID: sys.Studies[0].StudyID, Atlas: "Talairach", FullStudy: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("untraced query returned a span tree")
	}
	if got := sys.Metrics.Counter("qbism_queries_total").Value(); got != 1 {
		t.Errorf("qbism_queries_total = %d, want 1", got)
	}
}

// TestDegradedCounterIncrementsOncePerQuery is the regression test for
// the band-fallback accounting fix: a query answered through the slow
// path bumps qbism_degraded_total exactly once — not once per fallback
// SQL statement, not zero times — and its root span carries the
// degradation warning.
func TestDegradedCounterIncrementsOncePerQuery(t *testing.T) {
	sys, err := New(tracedConfig())
	if err != nil {
		t.Fatal(err)
	}
	study := sys.Studies[0].StudyID
	bands := sys.BandRegions[study]
	b := bands[len(bands)/2]
	spec := QuerySpec{StudyID: study, Atlas: "Talairach", HasBand: true, BandLo: int(b.Lo), BandHi: int(b.Hi)}

	if _, err := sys.RunQuery(spec); err != nil {
		t.Fatal(err)
	}
	if got := sys.Metrics.Counter("qbism_degraded_total").Value(); got != 0 {
		t.Fatalf("healthy query bumped qbism_degraded_total to %d", got)
	}

	// Bit-rot the stored band REGION behind the checksum table — the
	// row the default encoding resolves to (the planner's pick, which
	// may be the k³-tree row rather than h-naive).
	res, err := sys.DB.Exec(fmt.Sprintf(
		"select ib.region from intensityBand ib where ib.studyId = %d and ib.lo = %d and ib.hi = %d and ib.encoding = '%s'",
		study, b.Lo, b.Hi, sys.bandEncoding(study, int(b.Lo), int(b.Hi))))
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("band row lookup: %v", err)
	}
	if err := sys.LFM.Corrupt(res.Rows[0][0].L, 3, 0x40); err != nil {
		t.Fatal(err)
	}

	for i := 1; i <= 3; i++ {
		dres, err := sys.RunQuery(spec)
		if err != nil {
			t.Fatalf("degraded run %d failed: %v", i, err)
		}
		if !dres.Meta.Degraded {
			t.Fatalf("run %d not degraded", i)
		}
		if got := sys.Metrics.Counter("qbism_degraded_total").Value(); got != int64(i) {
			t.Fatalf("after %d degraded queries qbism_degraded_total = %d", i, got)
		}
		if w, ok := dres.Trace.Str("degraded"); !ok || w == "" {
			t.Errorf("run %d: root span missing degraded annotation", i)
		}
		if dres.Trace.Find("band.fallback") == nil {
			t.Errorf("run %d: no band.fallback span in tree", i)
		}
	}
}

// TestSlowLogCapturesForensics drives queries over a 1ns threshold so
// every query is "slow", and checks the ring captures label, latency,
// the rendered span tree, and the reconstructed EXPLAIN ANALYZE plan —
// while respecting its capacity bound.
func TestSlowLogCapturesForensics(t *testing.T) {
	cfg := tracedConfig()
	cfg.SlowLogThreshold = time.Nanosecond
	cfg.SlowLogCapacity = 3
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := sys.Table3Queries()
	for _, spec := range specs {
		if _, err := sys.RunQuery(spec); err != nil {
			t.Fatalf("%s: %v", spec.Label(), err)
		}
	}
	if sys.SlowLog.Total() != uint64(len(specs)) {
		t.Errorf("slow log saw %d queries, want %d", sys.SlowLog.Total(), len(specs))
	}
	entries := sys.SlowLog.Entries()
	if len(entries) != 3 {
		t.Fatalf("ring holds %d entries, want capacity 3", len(entries))
	}
	// Oldest-first, and the newest retained entry is the last query.
	if want := specs[len(specs)-1].Label(); entries[2].Label != want {
		t.Errorf("newest entry is %q, want %q", entries[2].Label, want)
	}
	for _, e := range entries {
		if e.Total <= 0 {
			t.Errorf("%s: non-positive latency", e.Label)
		}
		if !strings.Contains(e.Tree, "rpc.medicalQuery") {
			t.Errorf("%s: span tree missing the RPC:\n%s", e.Label, e.Tree)
		}
		if len(e.Explain) == 0 {
			t.Errorf("%s: no EXPLAIN ANALYZE capture", e.Label)
		}
		var sawOperator bool
		for _, line := range e.Explain {
			if strings.Contains(line, "scan ") && strings.Contains(line, "pages=") {
				sawOperator = true
			}
		}
		if !sawOperator {
			t.Errorf("%s: explain lines carry no operator counters: %q", e.Label, e.Explain)
		}
	}

	// A generous threshold captures nothing.
	cfg.SlowLogThreshold = time.Hour
	quiet, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := quiet.RunQuery(specs[0]); err != nil {
		t.Fatal(err)
	}
	if quiet.SlowLog.Len() != 0 {
		t.Errorf("1h threshold captured %d entries", quiet.SlowLog.Len())
	}
}

// TestBatchRootSpan checks RunQueriesTraced hangs every per-study query
// tree off one batch root — including under a concurrent worker pool,
// where span appends from different goroutines interleave.
func TestBatchRootSpan(t *testing.T) {
	sys, err := New(tracedConfig())
	if err != nil {
		t.Fatal(err)
	}
	var specs []QuerySpec
	for _, id := range sys.PETStudyIDs() {
		specs = append(specs,
			QuerySpec{StudyID: id, Atlas: "Talairach", FullStudy: true},
			QuerySpec{StudyID: id, Atlas: "Talairach", Structure: "ntal"},
		)
	}
	items, batch := sys.RunQueriesTraced(specs, 4)
	if batch == nil {
		t.Fatal("tracing on but batch span is nil")
	}
	if batch.Name() != "batch" {
		t.Fatalf("batch root named %q", batch.Name())
	}
	if got := len(batch.Children()); got != len(specs) {
		t.Fatalf("batch has %d child query spans, want %d", got, len(specs))
	}
	for _, item := range items {
		if item.Err != nil {
			t.Fatalf("%s: %v", item.Spec.Label(), item.Err)
		}
		if item.Res.Trace == nil {
			t.Fatalf("%s: no trace under batch", item.Spec.Label())
		}
	}
	if n, _ := batch.Int("queries"); n != int64(len(specs)) {
		t.Errorf("batch queries attr = %d, want %d", n, len(specs))
	}

	// Untraced batches still work and return a nil span.
	plain, err := New(chaosBaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	items, batch = plain.RunQueriesTraced(specs[:2], 2)
	if batch != nil {
		t.Error("untraced batch returned a span")
	}
	for _, item := range items {
		if item.Err != nil {
			t.Fatalf("%s: %v", item.Spec.Label(), item.Err)
		}
	}
}

// TestMetricsExposition runs a small suite and checks the registry's
// Prometheus text rendering carries the query counters and latency and
// page histograms with consistent totals.
func TestMetricsExposition(t *testing.T) {
	sys, err := New(tracedConfig())
	if err != nil {
		t.Fatal(err)
	}
	specs := sys.Table3Queries()
	for _, spec := range specs {
		if _, err := sys.RunQuery(spec); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	sys.Metrics.WriteProm(&sb)
	text := sb.String()
	for _, want := range []string{
		fmt.Sprintf("qbism_queries_total %d", len(specs)),
		"# TYPE qbism_query_latency_seconds histogram",
		fmt.Sprintf("qbism_query_latency_seconds_count %d", len(specs)),
		fmt.Sprintf("qbism_query_lfm_pages_count %d", len(specs)),
		"# TYPE sdb_queries_total counter",
		"sdb_operator_rows_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestTracedResultsIdentical is the differential guarantee at the
// system level: the same query suite on traced and untraced twins
// produces byte-identical voxel data and identical page accounting —
// observability must never change what a query computes or reads.
func TestTracedResultsIdentical(t *testing.T) {
	plain, err := New(chaosBaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	traced, err := New(tracedConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range plain.Table3Queries() {
		a, err := plain.RunQuery(spec)
		if err != nil {
			t.Fatalf("%s untraced: %v", spec.Label(), err)
		}
		b, err := traced.RunQuery(spec)
		if err != nil {
			t.Fatalf("%s traced: %v", spec.Label(), err)
		}
		ab, bb := marshalResult(t, plain, a), marshalResult(t, traced, b)
		if string(ab) != string(bb) {
			t.Errorf("%s: traced result diverged", spec.Label())
		}
		if a.Meta.LFMPages != b.Meta.LFMPages {
			t.Errorf("%s: traced pages %d != untraced %d",
				spec.Label(), b.Meta.LFMPages, a.Meta.LFMPages)
		}
	}
}
