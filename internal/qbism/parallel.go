package qbism

import (
	"fmt"
	"sync"
	"time"

	"qbism/internal/obs"
	"qbism/internal/region"
	"qbism/internal/sdb"
)

// The parallel executor: multi-study workloads — Table 4's n-way
// intersection and batches of independent query specs — fan out per
// study over a bounded worker pool. The whole query stack below here is
// safe for concurrent readers: the LFM serializes I/O (and its fault
// injector) under its mutex, netsim.Link and dx.Cache carry their own
// locks, and the SQL SELECT path is read-only. Results are collected by
// input position, so ordering is deterministic regardless of worker
// interleaving; each worker runs the same retrying RunQuery path, so
// PR 1's fault-resilience guarantees carry over unchanged.
//
// What is NOT deterministic under concurrency: per-query I/O counters
// (QueryMeta deltas interleave — see the note on QueryMeta) and the
// assignment of fault-injector draws to queries (the injector stream is
// consumed in arrival order at the device). Measured experiments that
// need exact per-query counters or a reproducible fault schedule run
// serially, as the paper's did.

// BatchItem is one completed entry of a RunQueries batch: the spec, and
// either its result or its error.
type BatchItem struct {
	Spec QuerySpec
	Res  *QueryResult
	Err  error
}

// RunQueries executes the specs across a bounded worker pool and
// returns one BatchItem per spec, in input order. workers <= 0 takes
// the pool size from Config.Workers; a resolved size of 0 or 1 runs
// serially on the calling goroutine. Individual query failures (after
// RunQuery's own retries) land in their item's Err; the batch always
// completes.
func (s *System) RunQueries(specs []QuerySpec, workers int) []BatchItem {
	items, _ := s.RunQueriesTraced(specs, workers)
	return items
}

// RunQueriesTraced is RunQueries plus the batch's root span: every
// per-study query tree hangs off one "batch" span, so a multi-study
// workload renders as a single forest. The span is nil when tracing is
// off. Spans are internally locked, so concurrent workers appending
// children under the shared root are race-clean.
func (s *System) RunQueriesTraced(specs []QuerySpec, workers int) ([]BatchItem, *obs.Span) {
	if workers <= 0 {
		workers = s.Cfg.Workers
	}
	batch := s.Tracer.Start("batch")
	batch.SetInt("queries", int64(len(specs)))
	batch.SetInt("workers", int64(workers))
	defer batch.End()
	out := make([]BatchItem, len(specs))
	for i, spec := range specs {
		out[i].Spec = spec
	}
	if workers <= 1 || len(specs) <= 1 {
		for i, spec := range specs {
			out[i].Res, out[i].Err = s.runQuerySpan(batch, spec)
		}
		return out, batch
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	work := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				out[i].Res, out[i].Err = s.runQuerySpan(batch, out[i].Spec)
			}
		}()
	}
	for i := range specs {
		work <- i
	}
	close(work)
	wg.Wait()
	return out, batch
}

// BatchSim prices a completed batch with the cost model's simulated
// clock: serial is the sum of every successful item's simulated total
// (one query after another, the paper's protocol), parallel is the
// makespan of list-scheduling the same durations over the given worker
// count in input order — the simulated wall clock of the executor. On
// hardware with fewer cores than workers the measured wall clock is
// capped by the machine; the simulated ratio prices what the overlap
// buys on the modeled 1993 testbed, deterministically.
func BatchSim(items []BatchItem, workers int) (serial, parallel time.Duration) {
	if workers < 1 {
		workers = 1
	}
	busy := make([]time.Duration, workers)
	for _, item := range items {
		if item.Res == nil {
			continue
		}
		d := item.Res.Timing.TotalSim
		serial += d
		// Next item goes to the earliest-free worker.
		min := 0
		for w := 1; w < workers; w++ {
			if busy[w] < busy[min] {
				min = w
			}
		}
		busy[min] += d
	}
	for _, b := range busy {
		if b > parallel {
			parallel = b
		}
	}
	return serial, parallel
}

// ConsistentBandRegion computes the Table 4 answer — the REGION where
// every listed study has intensities in [bandLo, bandHi] under the
// given encoding — fetching the per-study band REGIONs concurrently
// over a bounded pool, then intersecting smallest-first. The result is
// identical to the serial SQL plan's: each fetch is an independent
// read, and IntersectN is order-independent.
func (s *System) ConsistentBandRegion(studies []int, bandLo, bandHi int, encoding string, workers int) (*region.Region, error) {
	if len(studies) == 0 {
		return nil, fmt.Errorf("qbism: ConsistentBandRegion needs at least one study")
	}
	if workers <= 0 {
		workers = s.Cfg.Workers
	}
	if workers > len(studies) {
		workers = len(studies)
	}
	regions := make([]*region.Region, len(studies))
	errs := make([]error, len(studies))
	fetch := func(i int) {
		regions[i], errs[i] = s.fetchBandRegion(studies[i], bandLo, bandHi, encoding)
	}
	if workers <= 1 {
		for i := range studies {
			fetch(i)
		}
	} else {
		work := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range work {
					fetch(i)
				}
			}()
		}
		for i := range studies {
			work <- i
		}
		close(work)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("qbism: study %d band [%d,%d] %s: %w",
				studies[i], bandLo, bandHi, encoding, err)
		}
	}
	return region.IntersectN(regions...)
}

// fetchBandRegion reads one study's stored band REGION and recodes it
// onto the system curve (mirroring the nIntersect UDF's normalization).
func (s *System) fetchBandRegion(studyID, bandLo, bandHi int, encoding string) (*region.Region, error) {
	row, n, err := s.querySingle(nil, `
select ib.region
from   intensityBand ib
where  ib.studyId = ? and ib.lo = ? and ib.hi = ? and ib.encoding = ?`,
		sdb.Int(int64(studyID)), sdb.Int(int64(bandLo)), sdb.Int(int64(bandHi)),
		sdb.Str(encoding))
	if err != nil {
		return nil, err
	}
	if n != 1 {
		return nil, fmt.Errorf("no stored intensityBand row")
	}
	r, err := regionFromValue(s.DB, row[0])
	if err != nil {
		return nil, err
	}
	return r.Recode(s.curveFor(r))
}

// Table4OneParallel is Table4One with the per-study band fetches fanned
// out across the worker pool. The row's result columns (runs, voxels)
// and total page count match the serial plan; only wall-clock CPU
// changes.
func (s *System) Table4OneParallel(bandLo, bandHi int, encoding string, workers int) (Table4Row, error) {
	pets := s.PETStudyIDs()
	if len(pets) < 2 {
		return Table4Row{}, fmt.Errorf("qbism: need at least 2 PET studies, have %d", len(pets))
	}
	pages0 := s.LFM.Stats().PageReads
	//lint:ignore determinism CPUMeasured is deliberately real wall time (Table 4's measured-CPU column); the replayable clock lives in RealSim/BatchSim
	start := time.Now()
	out, err := s.ConsistentBandRegion(pets, bandLo, bandHi, encoding, workers)
	if err != nil {
		return Table4Row{}, err
	}
	//lint:ignore determinism pairs with the wall-clock start above; simulated time is reported separately in RealSim
	cpu := time.Since(start)
	pages := s.LFM.Stats().PageReads - pages0
	return Table4Row{
		Encoding:    encoding,
		NumStudies:  len(pets),
		LFMPages:    pages,
		CPUMeasured: cpu,
		RealSim:     s.Model.StarburstTime(cpu, pages),
		ResultRuns:  out.NumRuns(),
		ResultVox:   out.NumVoxels(),
	}, nil
}
