package qbism

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table3Queries returns the six single-study query specs of Table 3,
// scaled from the paper's 128-grid coordinates to this system's grid.
// The study is the first PET study; the box is the paper's 71x71x71
// rectangular solid with corners (30,30,30) and (100,100,100); bands
// 224-255 are the top intensity band.
func (s *System) Table3Queries() []QuerySpec {
	study := s.PETStudyIDs()[0]
	scale := func(v uint32) uint32 { return v * uint32(s.Side()) / 128 }
	box := [6]uint32{scale(30), scale(30), scale(30), scale(100), scale(100), scale(100)}
	topLo := 256 - s.Cfg.BandWidth
	return []QuerySpec{
		{StudyID: study, Atlas: "Talairach", FullStudy: true},
		{StudyID: study, Atlas: "Talairach", Box: &box},
		{StudyID: study, Atlas: "Talairach", Structure: "ntal"},
		{StudyID: study, Atlas: "Talairach", Structure: "ntal1"},
		{StudyID: study, Atlas: "Talairach", HasBand: true, BandLo: topLo, BandHi: 255},
		{StudyID: study, Atlas: "Talairach", Structure: "ntal1", HasBand: true, BandLo: topLo, BandHi: 255},
	}
}

// Table3 runs the six queries and returns their timing rows in order
// (Q1..Q6).
func (s *System) Table3() ([]QueryTiming, error) {
	var rows []QueryTiming
	for i, spec := range s.Table3Queries() {
		res, err := s.RunQuery(spec)
		if err != nil {
			return nil, fmt.Errorf("qbism: Q%d (%s): %w", i+1, spec.Label(), err)
		}
		res.Timing.Label = fmt.Sprintf("Q%d: %s", i+1, spec.Label())
		rows = append(rows, res.Timing)
	}
	return rows, nil
}

// WriteTable3 formats rows like the paper's Table 3.
func WriteTable3(w io.Writer, rows []QueryTiming) {
	fmt.Fprintln(w, "TABLE 3. Full-system run-time measurements for single-study queries.")
	fmt.Fprintln(w, "Sim columns price counted work with the calibrated 1993 cost model;")
	fmt.Fprintln(w, "meas columns are this machine's actual times.")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-34s %8s %9s %7s | %8s %8s | %6s %8s | %8s %8s | %8s %7s %8s | %9s\n",
		"query", "h-runs", "voxels", "LFM-IO",
		"DB(meas)", "DB(sim)", "msgs", "net(sim)",
		"imp(meas)", "imp(sim)", "rend(sim)", "other", "tot(meas)", "tot(sim)")
	fmt.Fprintln(w, strings.Repeat("-", 172))
	for _, r := range rows {
		fmt.Fprintf(w, "%-34s %8d %9d %7d | %8s %8.1f | %6d %8.1f | %8s %8.2f | %8.1f %7.1f %8s | %8.1fs\n",
			truncate(r.Label, 34), r.HRuns, r.Voxels, r.LFMPages,
			fmtDur(r.DBMeasured), r.DBSimReal.Seconds(),
			r.NetMessages, r.NetSim.Seconds(),
			fmtDur(r.ImportMeasured), r.ImportSim.Seconds(),
			r.RenderSim.Seconds(), r.OtherSim.Seconds(), fmtDur(r.TotalMeasured),
			r.TotalSim.Seconds())
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
