package qbism

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"qbism/internal/atlas"
	"qbism/internal/costmodel"
	"qbism/internal/dx"
	"qbism/internal/faultsim"
	"qbism/internal/lfm"
	"qbism/internal/netsim"
	"qbism/internal/obs"
	"qbism/internal/rencode"
	"qbism/internal/sdb"
	"qbism/internal/sfc"
	"qbism/internal/synth"
	"qbism/internal/transport"
	"qbism/internal/volume"
	"qbism/internal/warp"
)

// Band-encoding labels stored in the intensityBand.encoding column.
const (
	// EncHilbertNaive is runs in Hilbert order, 8 bytes per run — the
	// default of the paper's experiments (Section 6.1).
	EncHilbertNaive = "h-naive"
	// EncZNaive is runs in Z order, 8 bytes per run.
	EncZNaive = "z-naive"
	// EncOctant is regular octants in Z order, 4 bytes per octant.
	EncOctant = "octant"
	// EncK3Tree is the queryable k³-tree bitmap encoding in Hilbert
	// order: probes (CONTAINS, point membership, interval tests) answer
	// directly on the compressed bytes.
	EncK3Tree = "k3-tree"
)

// Config parameterizes a System.
type Config struct {
	// Bits is the atlas grid resolution: side = 1<<Bits. The paper uses
	// 7 (128x128x128).
	Bits int
	// NumPET and NumMRI are the study counts (paper: 5 and 3).
	NumPET, NumMRI int
	// Seed drives all synthetic data deterministically.
	Seed uint64
	// Method is the primary REGION storage encoding (default Naive, as
	// in the measured experiments; Elias is the paper's space winner).
	Method rencode.Method
	// Rencode selects the per-REGION representation strategy. "auto"
	// (the default) stores each band REGION both as runs and as a
	// k³-tree and lets costmodel.ReprPolicy pick, per REGION, which one
	// default queries resolve to; atlas structures store whichever of
	// Method and the k³-tree encodes smaller. "runs" reproduces the
	// seed exactly (run-list codecs only, no k³ rows). A rencode method
	// name (e.g. "k3-tree", "elias") forces that encoding everywhere.
	Rencode string
	// BandWidth is the intensity band width (default 32 -> 8 bands).
	BandWidth int
	// WithMeshes builds and stores structure surface meshes.
	WithMeshes bool
	// ExtraBandEncodings additionally stores every band REGION in Z-run
	// and octant encodings, enabling the Table 4 comparison.
	ExtraBandEncodings bool
	// SmallStudies shrinks acquisition grids (for tests).
	SmallStudies bool
	// OnlyStudies, when non-nil, loads only the listed study IDs. The
	// full corpus is still *enumerated* — IDs, patients, and synthesis
	// seeds are assigned exactly as for a full load — so a node holding
	// a shard of the corpus stores bytes identical to the same studies
	// in an unsharded system. Non-listed studies are skipped entirely
	// (no rows, no device space). An empty non-nil slice loads nothing.
	OnlyStudies []int
	// StoreRaw keeps the raw patient-space studies in the database, as
	// the paper's load pipeline does. Off saves device space.
	StoreRaw bool
	// DeviceBytes is the LFM device capacity (0 = sized automatically).
	DeviceBytes uint64
	// DevicePath, when set, backs the LFM with a real file at this path
	// instead of simulated memory (the paper's "operating system disk
	// device"). Page accounting is identical.
	DevicePath string

	// Checksums enables per-page CRC32 integrity on the LFM device:
	// written pages are checksummed and reads verify them, so device
	// corruption surfaces as a typed error instead of silent bad data.
	Checksums bool
	// LinkFaults, when non-nil, injects faults on the DX↔MedicalServer
	// link (drops, timeouts, latency, corruption). Installed after
	// loading, so only queries see them.
	LinkFaults *faultsim.Policy
	// DeviceFaults, when non-nil, injects faults on LFM page I/O (read
	// errors, in-transfer bit flips, write errors, torn pages).
	// Installed after loading.
	DeviceFaults *faultsim.Policy
	// Retry governs client-side retries of transient query failures.
	// The zero value means a single attempt; DefaultRetryPolicy() is a
	// sensible production setting.
	Retry RetryPolicy
	// Dial builds the System's client transport once loading finishes
	// (the system passed in is fully built). Nil means the default: the
	// simulated link behind the seam (transport.NewSim), which is the
	// pre-seam behavior exactly. The loopback equivalence suite dials a
	// TCP transport here instead, pointing the system's own query path
	// at a daemon serving the same system.
	Dial func(*System) (transport.Transport, error)

	// CachePages, when positive, enables a CLOCK page cache of that many
	// 4 KB pages in front of the LFM device. Zero keeps the paper's
	// unbuffered protocol: every page touch is a device read, so Table
	// 3/4 counts reproduce exactly.
	CachePages int
	// ReadGapPages is the largest page gap between two REGION run ranges
	// worth reading through in one contiguous device transfer instead of
	// two seeks (see ExtractOpts.GapPages). Zero reproduces the seed
	// read plan; Model.CoalesceGapPages() is the device break-even.
	ReadGapPages uint64
	// Workers bounds the parallel executor's worker pool for multi-study
	// batches (RunQueries, Table4Parallel). Zero or one means serial.
	Workers int

	// Trace enables end-to-end query tracing: every RunQuery produces a
	// span tree covering the RPC round trips, SQL parse/plan/execute
	// phases, per-operator counters, per-handle LFM I/O, and the DX
	// import/render stages (QueryResult.Trace). To keep the LFM span
	// attribution exact, traced MedicalServer handlers execute serially;
	// parallel batches still overlap their client-side stages.
	Trace bool
	// SlowLogThreshold, when positive (and Trace is set), captures the
	// full span tree and executed plan of every query whose measured
	// total latency reaches it into a bounded slow-query log
	// (System.SlowLog). Zero disables the log.
	SlowLogThreshold time.Duration
	// SlowLogCapacity is the slow-query ring size (default 32).
	SlowLogCapacity int

	// DisablePushdown turns off the SQL planner's predicate pushdown and
	// hash joins: every query runs FROM-order nested loops with one
	// monolithic WHERE filter at the top. Spatial predicates then
	// evaluate only after all joins, so long-field REGION pages are read
	// for rows a pushed filter would have discarded first. For A/B
	// benchmarks (cmd/perfbench) — results are identical, only the
	// per-row page accounting and CPU change.
	DisablePushdown bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Bits == 0 {
		c.Bits = 7
	}
	if c.NumPET == 0 && c.NumMRI == 0 {
		c.NumPET, c.NumMRI = 5, 3
	}
	if c.BandWidth == 0 {
		c.BandWidth = 32
	}
	if c.Seed == 0 {
		c.Seed = 1993
	}
	if c.SlowLogCapacity == 0 {
		c.SlowLogCapacity = 32
	}
	if c.Rencode == "" {
		c.Rencode = RencodeAuto
	}
	if c.DeviceBytes == 0 {
		volBytes := uint64(1) << (3 * c.Bits)
		perStudy := volBytes * 8 // warped + raw + bands + slack
		c.DeviceBytes = uint64(c.NumPET+c.NumMRI+2)*perStudy + (64 << 20)
	}
	return c
}

// StudyInfo summarizes one loaded study.
type StudyInfo struct {
	StudyID   int
	PatientID int
	Modality  synth.Modality
}

// System is a fully loaded QBISM instance.
type System struct {
	Cfg    Config
	Curve  sfc.Curve // Hilbert storage order
	ZCurve sfc.Curve // Z order, for encoding comparisons
	LFM    *lfm.Manager
	DB     *sdb.DB
	Link   *netsim.Link
	Model  costmodel.Model
	Atlas  *atlas.Atlas
	Cache  *dx.Cache

	// Retry is the client-side retry policy for RunQuery (from Config).
	Retry RetryPolicy
	// Transport carries the DX↔MedicalServer exchanges (from
	// Config.Dial; default: the simulated Link behind the seam). The
	// query path prices network time from deltas of its Stats.
	Transport transport.Transport
	// LinkFaults/DeviceFaults are the active fault injectors (nil when
	// the corresponding policy is unset); their counters feed chaos
	// tests and the CLI's fault report.
	LinkFaults   *faultsim.Injector
	DeviceFaults *faultsim.Injector

	// Tracer is the query tracer (nil unless Cfg.Trace). Metrics is the
	// process-wide registry — always present, so counters like
	// qbism_degraded_total accumulate whether or not tracing is on.
	// SlowLog is the slow-query ring (nil unless tracing with a
	// positive SlowLogThreshold).
	Tracer  *obs.Tracer
	Metrics *obs.Registry
	SlowLog *obs.SlowLog
	// traceMu serializes traced MedicalServer handlers so the LFM's
	// per-handle span attribution is exact (the LFM has one attachment
	// point; see lfm.Manager.SetSpan).
	traceMu sync.Mutex

	AtlasID int
	Studies []StudyInfo

	// BandRegions keeps the per-study Hilbert band REGIONs in memory for
	// the representation experiments (E1-E3); the authoritative copies
	// live in the intensityBand table.
	BandRegions map[int][]volume.BandSpec

	// bandRepr records, per stored band, the encoding label a band query
	// with no explicit Encoding resolves to — the planner's per-REGION
	// representation pick (see repr.go). Loaded sequentially, then read
	// by concurrent query workers and rewritten by AdaptBandRepr.
	reprMu   sync.RWMutex
	bandRepr map[bandKey]string // guarded by reprMu
}

// New builds, loads, and wires up a complete system: schema, atlas,
// synthesized studies (generated, registered, warped, banded), spatial
// UDFs, and the MedicalServer RPC endpoint.
func New(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if err := validateRencode(cfg.Rencode); err != nil {
		return nil, err
	}
	curve, err := sfc.New(sfc.Hilbert, 3, cfg.Bits)
	if err != nil {
		return nil, err
	}
	zcurve := sfc.MustNew(sfc.ZOrder, 3, cfg.Bits)
	var mgr *lfm.Manager
	if cfg.DevicePath != "" {
		dev, derr := lfm.OpenFileDevice(cfg.DevicePath, cfg.DeviceBytes)
		if derr != nil {
			return nil, derr
		}
		mgr, err = lfm.NewFileBacked(dev, lfm.DefaultPageSize)
	} else {
		mgr, err = lfm.New(cfg.DeviceBytes, lfm.DefaultPageSize)
	}
	if err != nil {
		return nil, err
	}
	if cfg.Checksums {
		if cerr := mgr.EnableChecksums(); cerr != nil {
			mgr.Close()
			return nil, cerr
		}
	}
	s := &System{
		Cfg:         cfg,
		Curve:       curve,
		ZCurve:      zcurve,
		LFM:         mgr,
		Retry:       cfg.Retry,
		DB:          sdb.NewDB(mgr),
		Link:        netsim.NewLink(costmodel.Default1993()),
		Model:       costmodel.Default1993(),
		Cache:       dx.NewCache(8),
		AtlasID:     1,
		BandRegions: make(map[int][]volume.BandSpec),
		bandRepr:    make(map[bandKey]string),
	}
	s.DB.SetPushdown(!cfg.DisablePushdown)
	if err := s.createSchema(); err != nil {
		s.Close()
		return nil, err
	}
	if err := s.loadAtlas(); err != nil {
		s.Close()
		return nil, err
	}
	if err := s.loadStudies(); err != nil {
		s.Close()
		return nil, err
	}
	if err := s.registerSpatialUDFs(); err != nil {
		s.Close()
		return nil, err
	}
	s.registerMedicalServer()
	// Loading traffic is not part of any measured query.
	s.LFM.ResetStats()
	s.Link.ResetStats()
	// Observability attaches only now, for the same reason: metrics and
	// spans describe query traffic, not the load pipeline.
	s.Metrics = obs.NewRegistry()
	s.DB.SetMetrics(s.Metrics)
	if cfg.Trace {
		s.Tracer = obs.NewTracer()
		s.DB.SetTracer(s.Tracer)
		if cfg.SlowLogThreshold > 0 {
			s.SlowLog = obs.NewSlowLog(cfg.SlowLogCapacity)
		}
	}
	// Fault injection starts only now: loading runs on perfect hardware
	// (the paper's load pipeline is out of scope for the fault model),
	// queries run on the configured one.
	if cfg.LinkFaults != nil {
		s.LinkFaults = faultsim.New(*cfg.LinkFaults)
		s.Link.SetFaults(s.LinkFaults)
	}
	if cfg.DeviceFaults != nil {
		s.DeviceFaults = faultsim.New(*cfg.DeviceFaults)
		s.LFM.SetFaults(s.DeviceFaults)
	}
	// The cache likewise covers only query traffic, never the load.
	if cfg.CachePages > 0 {
		s.LFM.EnableCache(cfg.CachePages)
	}
	// The client transport dials last, against the fully built system:
	// the default sim flavor wraps the link (and so sees the faults
	// installed above), while a custom Dial may point at a live daemon.
	if cfg.Dial != nil {
		tr, err := cfg.Dial(s)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("qbism: dialing transport: %w", err)
		}
		s.Transport = tr
	} else {
		s.Transport = transport.NewSim(s.Link, s.Model)
	}
	return s, nil
}

// Close releases the system's client transport and its long-field
// manager. The simulated flavors hold no external resources, but a TCP
// transport holds a live socket and a file-backed LFM holds an open
// device file — callers should Close when done.
func (s *System) Close() error {
	var first error
	if s.Transport != nil {
		first = s.Transport.Close()
	}
	if s.LFM != nil {
		if cerr := s.LFM.Close(); cerr != nil && first == nil {
			first = cerr
		}
	}
	return first
}

// extractOpts returns the read-plan options the spatial UDFs use.
func (s *System) extractOpts() ExtractOpts {
	return ExtractOpts{GapPages: s.Cfg.ReadGapPages}
}

// createSchema issues the DDL for the Figure 1 schema.
func (s *System) createSchema() error {
	ddl := []string{
		`create table atlas (atlasId int, atlasName string, n int,
		   x0 float, y0 float, z0 float, dx float, dy float, dz float)`,
		`create table neuralSystem (systemId int, systemName string)`,
		`create table neuralStructure (structureId int, structureName string, systemId int)`,
		`create table atlasStructure (structureId int, atlasId int, region long, surface long)`,
		`create table patient (patientId int, name string, age int, sex string)`,
		`create table rawVolume (studyId int, patientId int, date string, modality string,
		   nx int, ny int, nz int, data long)`,
		`create table warpedVolume (studyId int, atlasId int, warpParams string, data long)`,
		`create table intensityBand (studyId int, atlasId int, lo int, hi int,
		   encoding string, region long)`,
	}
	for _, stmt := range ddl {
		if _, err := s.DB.Exec(stmt); err != nil {
			return fmt.Errorf("qbism: schema: %w", err)
		}
	}
	return nil
}

// loadAtlas builds the procedural atlas and stores it relationally.
func (s *System) loadAtlas() error {
	a, err := atlas.Build(s.Curve, s.Cfg.WithMeshes)
	if err != nil {
		return err
	}
	s.Atlas = a
	side := 1 << s.Cfg.Bits
	if _, err := s.DB.Exec(fmt.Sprintf(
		`insert into atlas values (%d, 'Talairach', %d, 0.0, 0.0, 0.0, %g, %g, %g)`,
		s.AtlasID, side, a.VoxelMM[0], a.VoxelMM[1], a.VoxelMM[2])); err != nil {
		return err
	}
	systems := make(map[string]int)
	for _, st := range a.Structures {
		sysID, ok := systems[st.System]
		if !ok {
			sysID = len(systems) + 1
			systems[st.System] = sysID
			if _, err := s.DB.Exec(fmt.Sprintf(
				`insert into neuralSystem values (%d, '%s')`, sysID, st.System)); err != nil {
				return err
			}
		}
		if _, err := s.DB.Exec(fmt.Sprintf(
			`insert into neuralStructure values (%d, '%s', %d)`, st.ID, st.Name, sysID)); err != nil {
			return err
		}
		enc, err := s.encodeStructure(st.Region)
		if err != nil {
			return err
		}
		regionHandle, err := s.LFM.Allocate(enc)
		if err != nil {
			return err
		}
		surface := sdb.Null()
		if st.Mesh != nil {
			h, err := s.LFM.Allocate(st.Mesh.Marshal())
			if err != nil {
				return err
			}
			surface = sdb.Long(h)
		}
		if err := s.DB.InsertRow("atlasStructure", []sdb.Value{
			sdb.Int(int64(st.ID)), sdb.Int(int64(s.AtlasID)), sdb.Long(regionHandle), surface,
		}); err != nil {
			return err
		}
	}
	return nil
}

// loadStudies synthesizes, registers, warps, stores, and bands each study.
func (s *System) loadStudies() error {
	side := 1 << s.Cfg.Bits
	names := []string{"Hughes", "Ramirez", "Okafor", "Lindqvist", "Tanaka", "Moreau", "Petrov", "Osei", "Kim", "Novak"}
	var only map[int]bool
	if s.Cfg.OnlyStudies != nil {
		only = make(map[int]bool, len(s.Cfg.OnlyStudies))
		for _, id := range s.Cfg.OnlyStudies {
			only[id] = true
		}
	}
	studyID := 0
	for i := 0; i < s.Cfg.NumPET+s.Cfg.NumMRI; i++ {
		modality := synth.PET
		if i >= s.Cfg.NumPET {
			modality = synth.MRI
		}
		studyID++
		patientID := i + 1
		if only != nil && !only[studyID] {
			// Not this node's shard: the ID/seed slots above stay
			// consumed so loaded studies match an unsharded load
			// byte-for-byte.
			continue
		}
		params := synth.Params{
			StudyID:   studyID,
			PatientID: patientID,
			Modality:  modality,
			Seed:      s.Cfg.Seed + uint64(i)*7919,
			AtlasSide: side,
		}
		if s.Cfg.SmallStudies {
			g := synth.DefaultGrid(modality, side)
			params.Grid = warp.Grid{NX: g.NX / 2, NY: g.NY / 2, NZ: g.NZ}
			if params.Grid.NZ < 2 {
				params.Grid.NZ = 2
			}
		}
		raw, err := synth.Generate(params)
		if err != nil {
			return err
		}
		name := names[i%len(names)]
		age := 25 + int((s.Cfg.Seed+uint64(i)*13)%50)
		sex := "F"
		if i%2 == 1 {
			sex = "M"
		}
		if _, err := s.DB.Exec(fmt.Sprintf(
			`insert into patient values (%d, '%s', %d, '%s')`, patientID, name, age, sex)); err != nil {
			return err
		}
		rawHandle := sdb.Null()
		if s.Cfg.StoreRaw {
			h, err := s.LFM.Allocate(raw.Data)
			if err != nil {
				return err
			}
			rawHandle = sdb.Long(h)
		}
		if err := s.DB.InsertRow("rawVolume", []sdb.Value{
			sdb.Int(int64(studyID)), sdb.Int(int64(patientID)), sdb.Str(raw.Date),
			sdb.Str(modality.String()),
			sdb.Int(int64(raw.Grid.NX)), sdb.Int(int64(raw.Grid.NY)), sdb.Int(int64(raw.Grid.NZ)),
			rawHandle,
		}); err != nil {
			return err
		}

		// Warp to atlas space at load time (Section 2.2: "we generate and
		// store the warped volume here at database load time ... since
		// the computation is expensive").
		scan, fitted, err := raw.WarpToAtlas(side)
		if err != nil {
			return err
		}
		vol, err := volume.FromScanline(s.Curve, scan)
		if err != nil {
			return err
		}
		volHandle, err := s.LFM.Allocate(vol.Bytes())
		if err != nil {
			return err
		}
		wp, err := json.Marshal(fitted.M)
		if err != nil {
			return err
		}
		if err := s.DB.InsertRow("warpedVolume", []sdb.Value{
			sdb.Int(int64(studyID)), sdb.Int(int64(s.AtlasID)), sdb.Str(string(wp)), sdb.Long(volHandle),
		}); err != nil {
			return err
		}

		// Banding: uniformly spaced intensity intervals (width 32 in the
		// paper) stored as REGIONs — the Intensity Band "index".
		bands, err := vol.UniformBands(s.Cfg.BandWidth)
		if err != nil {
			return err
		}
		s.BandRegions[studyID] = bands
		for _, b := range bands {
			if err := s.storeBand(studyID, b, EncHilbertNaive); err != nil {
				return err
			}
			if s.Cfg.ExtraBandEncodings {
				for _, enc := range []string{EncZNaive, EncOctant} {
					if err := s.storeBand(studyID, b, enc); err != nil {
						return err
					}
				}
			}
			if err := s.loadBandRepr(studyID, b); err != nil {
				return err
			}
		}
		s.Studies = append(s.Studies, StudyInfo{StudyID: studyID, PatientID: patientID, Modality: modality})
	}
	return nil
}

// storeBand encodes one band REGION under the named encoding and inserts
// the intensityBand row. Labels not in the fixed set resolve through
// rencode.MethodByName and encode on the storage (Hilbert) curve — this
// is how the k3-tree rows and forced Rencode methods are stored.
func (s *System) storeBand(studyID int, b volume.BandSpec, encoding string) error {
	var data []byte
	var err error
	switch encoding {
	case EncHilbertNaive:
		data, err = rencode.Encode(rencode.Naive, b.Region)
	case EncZNaive:
		rz, rerr := b.Region.Recode(s.ZCurve)
		if rerr != nil {
			return rerr
		}
		data, err = rencode.Encode(rencode.Naive, rz)
	case EncOctant:
		rz, rerr := b.Region.Recode(s.ZCurve)
		if rerr != nil {
			return rerr
		}
		data, err = rencode.Encode(rencode.Octant, rz)
	default:
		m, ok := rencode.MethodByName(encoding)
		if !ok {
			return fmt.Errorf("qbism: unknown band encoding %q", encoding)
		}
		data, err = rencode.Encode(m, b.Region)
	}
	if err != nil {
		return err
	}
	h, err := s.LFM.Allocate(data)
	if err != nil {
		return err
	}
	return s.DB.InsertRow("intensityBand", []sdb.Value{
		sdb.Int(int64(studyID)), sdb.Int(int64(s.AtlasID)),
		sdb.Int(int64(b.Lo)), sdb.Int(int64(b.Hi)),
		sdb.Str(encoding), sdb.Long(h),
	})
}

// Side returns the atlas grid side length.
func (s *System) Side() int { return 1 << s.Cfg.Bits }

// PETStudyIDs returns the loaded PET study ids in order.
func (s *System) PETStudyIDs() []int {
	var out []int
	for _, st := range s.Studies {
		if st.Modality == synth.PET {
			out = append(out, st.StudyID)
		}
	}
	return out
}
