package volume

import (
	"fmt"

	"qbism/internal/region"
	"qbism/internal/sfc"
)

// DataRegion pairs a REGION with the intensity values of its voxels —
// the return type of the paper's EXTRACT_DATA operator (the DATA_REGION
// type of footnote 6). Values are stored in curve order, aligned with
// the region's run list.
type DataRegion struct {
	Region *region.Region
	Values []byte
}

// Extract implements EXTRACT_DATA(VOLUME v, REGION r): the intensity
// values from v at exactly the voxels of r. The volume and region must
// be on the same curve so the extraction is a sequence of contiguous
// copies, one per run — this is why clustering (few runs) matters.
func Extract(v *Volume, r *region.Region) (*DataRegion, error) {
	rc, vc := r.Curve(), v.Curve()
	if rc.Kind() != vc.Kind() || rc.Dim() != vc.Dim() || rc.Bits() != vc.Bits() {
		return nil, fmt.Errorf("volume: extract region on %s/%db from volume on %s/%db",
			rc.Kind(), rc.Bits(), vc.Kind(), vc.Bits())
	}
	out := make([]byte, 0, r.NumVoxels())
	for _, run := range r.Runs() {
		out = append(out, v.data[run.Lo:run.Hi+1]...)
	}
	return &DataRegion{Region: r, Values: out}, nil
}

// NumVoxels returns the number of (voxel, value) pairs.
func (d *DataRegion) NumVoxels() uint64 { return uint64(len(d.Values)) }

// ValueAtID returns the intensity at curve position id and whether the
// position is inside the data region.
func (d *DataRegion) ValueAtID(id uint64) (uint8, bool) {
	idx := 0
	for _, run := range d.Region.Runs() {
		if id < run.Lo {
			return 0, false
		}
		if id <= run.Hi {
			return d.Values[idx+int(id-run.Lo)], true
		}
		idx += int(run.Len())
	}
	return 0, false
}

// ForEach calls f for every (point, value) pair in curve order.
func (d *DataRegion) ForEach(f func(p sfc.Point, value uint8) bool) {
	c := d.Region.Curve()
	i := 0
	d.Region.ForEachID(func(id uint64) bool {
		ok := f(c.Point(id), d.Values[i])
		i++
		return ok
	})
}

// Stats summarizes the values of a data region.
type Stats struct {
	N         uint64
	Min, Max  uint8
	Mean      float64
	Histogram [256]uint64
}

// Stats computes summary statistics over the extracted values.
func (d *DataRegion) Stats() Stats {
	s := Stats{N: uint64(len(d.Values))}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = d.Values[0], d.Values[0]
	var total uint64
	for _, v := range d.Values {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		total += uint64(v)
		s.Histogram[v]++
	}
	s.Mean = float64(total) / float64(s.N)
	return s
}

// Filter returns the sub-DataRegion of voxels whose value lies in
// [lo, hi] — the post-extraction half of a mixed query.
func (d *DataRegion) Filter(lo, hi uint8) (*DataRegion, error) {
	if lo > hi {
		return nil, fmt.Errorf("volume: inverted filter band [%d,%d]", lo, hi)
	}
	var ids []uint64
	var vals []byte
	i := 0
	d.Region.ForEachID(func(id uint64) bool {
		if v := d.Values[i]; v >= lo && v <= hi {
			ids = append(ids, id)
			vals = append(vals, v)
		}
		i++
		return true
	})
	r, err := region.FromIDs(d.Region.Curve(), ids)
	if err != nil {
		return nil, err
	}
	return &DataRegion{Region: r, Values: vals}, nil
}

// VoxelwiseMean computes, over the voxels of r, the per-voxel average
// intensity across several volumes — the paper's envisioned "display the
// voxel-wise average intensity inside ntal for these 1,000 PET studies".
// All volumes must share r's curve.
func VoxelwiseMean(r *region.Region, vols []*Volume) (*DataRegion, error) {
	if len(vols) == 0 {
		return nil, fmt.Errorf("volume: VoxelwiseMean needs at least one volume")
	}
	sums := make([]uint32, r.NumVoxels())
	for _, v := range vols {
		d, err := Extract(v, r)
		if err != nil {
			return nil, err
		}
		for i, b := range d.Values {
			sums[i] += uint32(b)
		}
	}
	out := make([]byte, len(sums))
	n := uint32(len(vols))
	for i, s := range sums {
		out[i] = uint8(s / n)
	}
	return &DataRegion{Region: r, Values: out}, nil
}
