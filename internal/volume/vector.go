package volume

import (
	"fmt"
	"math"

	"qbism/internal/region"
	"qbism/internal/sfc"
)

// Vector fields. The paper (Section 1) defines the general n-d m-vector
// field and notes the techniques "handle vector fields by simply storing
// vectors in place of scalars in the appropriate data structures" — this
// file does exactly that: M components per voxel, interleaved in curve
// order, so REGION-based extraction works component-for-component like
// the scalar case. The canonical producer is Gradient, the "computing a
// gradient field" manipulation DX offers on query results.

// VectorVolume is a complete M-component field over the grid of a curve,
// stored as M interleaved bytes per voxel in curve order.
type VectorVolume struct {
	curve sfc.Curve
	m     int
	data  []byte // len == curve.Length() * m
}

// NewVector wraps data (curve order, M bytes per voxel) as a vector
// volume.
func NewVector(c sfc.Curve, m int, data []byte) (*VectorVolume, error) {
	if m < 1 {
		return nil, fmt.Errorf("volume: vector arity %d", m)
	}
	if uint64(len(data)) != c.Length()*uint64(m) {
		return nil, fmt.Errorf("volume: vector data length %d != %d voxels x %d components",
			len(data), c.Length(), m)
	}
	return &VectorVolume{curve: c, m: m, data: data}, nil
}

// VectorFromFunc samples f (returning M components) over the grid.
func VectorFromFunc(c sfc.Curve, m int, f func(p sfc.Point) []uint8) (*VectorVolume, error) {
	if m < 1 {
		return nil, fmt.Errorf("volume: vector arity %d", m)
	}
	data := make([]byte, c.Length()*uint64(m))
	for id := uint64(0); id < c.Length(); id++ {
		v := f(c.Point(id))
		if len(v) != m {
			return nil, fmt.Errorf("volume: sample function returned %d components, want %d", len(v), m)
		}
		copy(data[id*uint64(m):], v)
	}
	return &VectorVolume{curve: c, m: m, data: data}, nil
}

// Curve returns the storage order.
func (v *VectorVolume) Curve() sfc.Curve { return v.curve }

// M returns the vector arity.
func (v *VectorVolume) M() int { return v.m }

// NumVoxels returns the voxel count.
func (v *VectorVolume) NumVoxels() uint64 { return v.curve.Length() }

// ValueAtID returns the M components at a curve position. The returned
// slice aliases the volume; treat as read-only.
func (v *VectorVolume) ValueAtID(id uint64) []uint8 {
	off := id * uint64(v.m)
	return v.data[off : off+uint64(v.m)]
}

// ValueAt returns the components at a grid point.
func (v *VectorVolume) ValueAt(p sfc.Point) []uint8 {
	return v.ValueAtID(v.curve.ID(p))
}

// Component extracts one component plane as a scalar Volume.
func (v *VectorVolume) Component(i int) (*Volume, error) {
	if i < 0 || i >= v.m {
		return nil, fmt.Errorf("volume: component %d of %d-vector", i, v.m)
	}
	out := make([]byte, v.curve.Length())
	for id := range out {
		out[id] = v.data[uint64(id)*uint64(v.m)+uint64(i)]
	}
	return &Volume{curve: v.curve, data: out}, nil
}

// VectorDataRegion pairs a REGION with per-voxel vectors.
type VectorDataRegion struct {
	Region *region.Region
	M      int
	Values []byte // NumVoxels * M bytes in curve order
}

// ExtractVector is EXTRACT_DATA for vector fields: the vectors of v at
// exactly the voxels of r.
func ExtractVector(v *VectorVolume, r *region.Region) (*VectorDataRegion, error) {
	rc, vc := r.Curve(), v.curve
	if rc.Kind() != vc.Kind() || rc.Dim() != vc.Dim() || rc.Bits() != vc.Bits() {
		return nil, fmt.Errorf("volume: extract region on %s/%db from vector volume on %s/%db",
			rc.Kind(), rc.Bits(), vc.Kind(), vc.Bits())
	}
	m := uint64(v.m)
	out := make([]byte, 0, r.NumVoxels()*m)
	for _, run := range r.Runs() {
		out = append(out, v.data[run.Lo*m:(run.Hi+1)*m]...)
	}
	return &VectorDataRegion{Region: r, M: v.m, Values: out}, nil
}

// NumVoxels returns the vector count.
func (d *VectorDataRegion) NumVoxels() uint64 {
	return uint64(len(d.Values)) / uint64(d.M)
}

// gradComponent encodes a signed central difference into an offset-128
// byte (0 = -128, 128 = 0, 255 = +127).
func gradComponent(hi, lo float64) uint8 {
	d := (hi - lo) / 2
	v := int(d) + 128
	if v < 0 {
		v = 0
	}
	if v > 255 {
		v = 255
	}
	return uint8(v)
}

// Gradient computes the central-difference gradient of a scalar volume
// as a 3-vector field (components stored offset-128). Boundary voxels
// use one-sided differences.
func Gradient(v *Volume) (*VectorVolume, error) {
	c := v.curve
	if c.Dim() != 3 {
		return nil, fmt.Errorf("volume: gradient needs a 3D volume, got %dD", c.Dim())
	}
	side := uint32(1) << c.Bits()
	sample := func(x, y, z uint32) float64 {
		return float64(v.ValueAt(sfc.Pt(x, y, z)))
	}
	clampLo := func(a uint32) uint32 {
		if a == 0 {
			return 0
		}
		return a - 1
	}
	clampHi := func(a uint32) uint32 {
		if a >= side-1 {
			return side - 1
		}
		return a + 1
	}
	return VectorFromFunc(c, 3, func(p sfc.Point) []uint8 {
		return []uint8{
			gradComponent(sample(clampHi(p.X), p.Y, p.Z), sample(clampLo(p.X), p.Y, p.Z)),
			gradComponent(sample(p.X, clampHi(p.Y), p.Z), sample(p.X, clampLo(p.Y), p.Z)),
			gradComponent(sample(p.X, p.Y, clampHi(p.Z)), sample(p.X, p.Y, clampLo(p.Z))),
		}
	})
}

// Magnitude reduces a vector volume to the per-voxel Euclidean norm of
// its offset-128 components, clamped to 0-255 — e.g. gradient magnitude
// for edge visualization.
func (v *VectorVolume) Magnitude() *Volume {
	out := make([]byte, v.curve.Length())
	m := uint64(v.m)
	for id := uint64(0); id < v.curve.Length(); id++ {
		var s float64
		for i := uint64(0); i < m; i++ {
			d := float64(v.data[id*m+i]) - 128
			s += d * d
		}
		mag := int(math.Sqrt(s))
		if mag > 255 {
			mag = 255
		}
		out[id] = uint8(mag)
	}
	return &Volume{curve: v.curve, data: out}
}
