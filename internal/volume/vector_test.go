package volume

import (
	"testing"

	"qbism/internal/region"
	"qbism/internal/sfc"
)

func TestNewVectorValidation(t *testing.T) {
	if _, err := NewVector(h3, 0, nil); err == nil {
		t.Error("arity 0 accepted")
	}
	if _, err := NewVector(h3, 2, make([]byte, 3)); err == nil {
		t.Error("wrong length accepted")
	}
	v, err := NewVector(h3, 2, make([]byte, 2*h3.Length()))
	if err != nil || v.M() != 2 || v.NumVoxels() != h3.Length() {
		t.Errorf("NewVector: %v %v", v, err)
	}
}

func TestVectorFromFuncAndAccess(t *testing.T) {
	v, err := VectorFromFunc(h3, 3, func(p sfc.Point) []uint8 {
		return []uint8{uint8(p.X), uint8(p.Y), uint8(p.Z)}
	})
	if err != nil {
		t.Fatal(err)
	}
	got := v.ValueAt(sfc.Pt(3, 7, 11))
	if got[0] != 3 || got[1] != 7 || got[2] != 11 {
		t.Errorf("ValueAt = %v", got)
	}
	// Component planes match.
	cx, err := v.Component(0)
	if err != nil {
		t.Fatal(err)
	}
	if cx.ValueAt(sfc.Pt(9, 1, 2)) != 9 {
		t.Error("component plane wrong")
	}
	if _, err := v.Component(3); err == nil {
		t.Error("out-of-range component accepted")
	}
	// Arity mismatch from the sampler.
	if _, err := VectorFromFunc(h3, 2, func(p sfc.Point) []uint8 { return []uint8{1} }); err == nil {
		t.Error("bad sampler arity accepted")
	}
}

func TestExtractVector(t *testing.T) {
	v, _ := VectorFromFunc(h3, 2, func(p sfc.Point) []uint8 {
		return []uint8{uint8(p.X * 2), uint8(p.Y * 2)}
	})
	r, err := region.FromBox(h3, region.Box{Min: sfc.Pt(1, 1, 1), Max: sfc.Pt(3, 3, 3)})
	if err != nil {
		t.Fatal(err)
	}
	d, err := ExtractVector(v, r)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumVoxels() != 27 || len(d.Values) != 54 {
		t.Fatalf("extracted %d voxels, %d bytes", d.NumVoxels(), len(d.Values))
	}
	// Spot-check alignment: walk region ids and compare to volume.
	i := 0
	r.ForEachID(func(id uint64) bool {
		want := v.ValueAtID(id)
		if d.Values[2*i] != want[0] || d.Values[2*i+1] != want[1] {
			t.Fatalf("vector %d mismatched", i)
		}
		i++
		return true
	})
	// Curve mismatch rejected.
	rz, _ := r.Recode(z3)
	if _, err := ExtractVector(v, rz); err == nil {
		t.Error("curve mismatch accepted")
	}
}

func TestGradientOfLinearRamp(t *testing.T) {
	// f(x,y,z) = 4x: gradient must be (+4, 0, 0) everywhere away from
	// boundaries.
	v := FromFunc(h3, func(p sfc.Point) uint8 { return uint8(p.X * 4) })
	g, err := Gradient(v)
	if err != nil {
		t.Fatal(err)
	}
	got := g.ValueAt(sfc.Pt(7, 8, 8))
	if got[0] != 128+4 {
		t.Errorf("dx = %d, want %d", got[0], 128+4)
	}
	if got[1] != 128 || got[2] != 128 {
		t.Errorf("dy,dz = %d,%d, want 128,128", got[1], got[2])
	}
	// Magnitude of the ramp is 4 in the interior.
	mag := g.Magnitude()
	if m := mag.ValueAt(sfc.Pt(7, 8, 8)); m != 4 {
		t.Errorf("magnitude = %d, want 4", m)
	}
	// 2D volumes are rejected.
	v2 := FromFunc(sfc.MustNew(sfc.Hilbert, 2, 3), func(p sfc.Point) uint8 { return 0 })
	if _, err := Gradient(v2); err == nil {
		t.Error("2D gradient accepted")
	}
}

func TestGradientDetectsEdges(t *testing.T) {
	// A step function: gradient magnitude peaks at the step.
	v := FromFunc(h3, func(p sfc.Point) uint8 {
		if p.X >= 8 {
			return 200
		}
		return 0
	})
	g, err := Gradient(v)
	if err != nil {
		t.Fatal(err)
	}
	mag := g.Magnitude()
	edge := mag.ValueAt(sfc.Pt(8, 8, 8))
	flat := mag.ValueAt(sfc.Pt(3, 8, 8))
	if edge <= flat {
		t.Errorf("edge magnitude %d not above flat %d", edge, flat)
	}
}

func TestGradComponentClamps(t *testing.T) {
	if gradComponent(999999, 0) != 255 {
		t.Error("positive overflow not clamped")
	}
	if gradComponent(0, 999999) != 0 {
		t.Error("negative overflow not clamped")
	}
	if gradComponent(10, 10) != 128 {
		t.Error("zero difference not centered")
	}
}
