// Package volume implements the VOLUME data type of the QBISM paper: a
// complete 3D scalar field sampled on a regular cubic grid, stored as a
// linearized list of intensity values whose positions are implied by a
// space-filling curve order (Section 4.1).
//
// The paper stores volumes in Hilbert order for spatial clustering; this
// package supports any sfc.Curve so the orderings can be compared.
package volume

import (
	"fmt"

	"qbism/internal/region"
	"qbism/internal/sfc"
)

// Volume is a scalar field over the full grid of a curve, one 8-bit
// intensity per voxel (the paper's studies are 8 bits deep), stored in
// curve order.
type Volume struct {
	curve sfc.Curve
	data  []byte
}

// New wraps data (already in curve order) as a Volume. The slice is
// retained, not copied; it must have exactly curve.Length() bytes.
func New(c sfc.Curve, data []byte) (*Volume, error) {
	if uint64(len(data)) != c.Length() {
		return nil, fmt.Errorf("volume: data length %d != curve length %d", len(data), c.Length())
	}
	return &Volume{curve: c, data: data}, nil
}

// FromScanline reorders a scanline-order (x fastest) sample array into
// curve order — the transformation applied when a raw or warped study is
// loaded into the database.
func FromScanline(c sfc.Curve, scan []byte) (*Volume, error) {
	if uint64(len(scan)) != c.Length() {
		return nil, fmt.Errorf("volume: scanline length %d != curve length %d", len(scan), c.Length())
	}
	if c.Kind() == sfc.Scanline {
		out := make([]byte, len(scan))
		copy(out, scan)
		return &Volume{curve: c, data: out}, nil
	}
	lin := sfc.MustNew(sfc.Scanline, c.Dim(), c.Bits())
	data := make([]byte, len(scan))
	for id := uint64(0); id < c.Length(); id++ {
		data[id] = scan[lin.ID(c.Point(id))]
	}
	return &Volume{curve: c, data: data}, nil
}

// FromFunc samples f over the grid into a volume in curve order.
func FromFunc(c sfc.Curve, f func(p sfc.Point) uint8) *Volume {
	data := make([]byte, c.Length())
	for id := uint64(0); id < c.Length(); id++ {
		data[id] = f(c.Point(id))
	}
	return &Volume{curve: c, data: data}
}

// Curve returns the storage order of the volume.
func (v *Volume) Curve() sfc.Curve { return v.curve }

// Bytes returns the underlying intensity array in curve order. Callers
// must treat it as read-only.
func (v *Volume) Bytes() []byte { return v.data }

// NumVoxels returns the total voxel count.
func (v *Volume) NumVoxels() uint64 { return uint64(len(v.data)) }

// ValueAtID returns the intensity at curve position id — the "efficient
// random access" requirement of Section 4.1.
func (v *Volume) ValueAtID(id uint64) uint8 { return v.data[id] }

// ValueAt returns the intensity at a grid point.
func (v *Volume) ValueAt(p sfc.Point) uint8 { return v.data[v.curve.ID(p)] }

// Recode re-linearizes the volume onto another curve over the same grid.
func (v *Volume) Recode(to sfc.Curve) (*Volume, error) {
	if to.Dim() != v.curve.Dim() || to.Bits() != v.curve.Bits() {
		return nil, fmt.Errorf("volume: cannot recode between grids %dD/%db and %dD/%db",
			v.curve.Dim(), v.curve.Bits(), to.Dim(), to.Bits())
	}
	data := make([]byte, len(v.data))
	for id := uint64(0); id < to.Length(); id++ {
		data[id] = v.data[v.curve.ID(to.Point(id))]
	}
	return &Volume{curve: to, data: data}, nil
}

// Histogram returns the 256-bin intensity histogram of the volume.
func (v *Volume) Histogram() [256]uint64 {
	var h [256]uint64
	for _, b := range v.data {
		h[b]++
	}
	return h
}

// Band returns the intensity-band REGION of voxels with intensity in
// [lo, hi] (Section 3.3's Intensity Band entity).
func (v *Volume) Band(lo, hi uint8) (*region.Region, error) {
	if lo > hi {
		return nil, fmt.Errorf("volume: inverted band [%d,%d]", lo, hi)
	}
	var runs []region.Run
	inRun := false
	var cur region.Run
	for id := uint64(0); id < uint64(len(v.data)); id++ {
		val := v.data[id]
		if val >= lo && val <= hi {
			if !inRun {
				cur = region.Run{Lo: id, Hi: id}
				inRun = true
			} else {
				cur.Hi = id
			}
		} else if inRun {
			runs = append(runs, cur)
			inRun = false
		}
	}
	if inRun {
		runs = append(runs, cur)
	}
	return region.FromRuns(v.curve, runs)
}

// BandSpec describes one uniform intensity band.
type BandSpec struct {
	Lo, Hi uint8
	Region *region.Region
}

// UniformBands partitions the 0-255 intensity range into bands of the
// given width (the paper uses width 32, producing 8 bands) and returns
// the band REGIONs in increasing intensity order.
func (v *Volume) UniformBands(width int) ([]BandSpec, error) {
	if width < 1 || width > 256 || 256%width != 0 {
		return nil, fmt.Errorf("volume: band width %d must divide 256", width)
	}
	var bands []BandSpec
	for lo := 0; lo < 256; lo += width {
		hi := lo + width - 1
		r, err := v.Band(uint8(lo), uint8(hi))
		if err != nil {
			return nil, err
		}
		bands = append(bands, BandSpec{Lo: uint8(lo), Hi: uint8(hi), Region: r})
	}
	return bands, nil
}
