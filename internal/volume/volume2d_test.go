package volume

import (
	"testing"

	"qbism/internal/region"
	"qbism/internal/sfc"
)

// The paper notes its techniques "can be extended to handle fields of
// dimensionalities other than 3 in a straightforward manner"; these
// tests exercise the full 2D path: scanline import, banding, region
// algebra and extraction on a 2D Hilbert curve (e.g. a single image
// slice, or the paper's 1-d stock-price example generalized).

var h2d = sfc.MustNew(sfc.Hilbert, 2, 5) // 32x32 image

func TestVolume2DRoundTrip(t *testing.T) {
	scan := make([]byte, h2d.Length())
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			scan[y*32+x] = uint8(x * 8)
		}
	}
	v, err := FromScanline(h2d, scan)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []uint32{0, 7, 31} {
		if got := v.ValueAt(sfc.Pt(x, 5, 0)); got != uint8(x*8) {
			t.Errorf("ValueAt(%d,5) = %d, want %d", x, got, x*8)
		}
	}
}

func TestVolume2DBandAndExtract(t *testing.T) {
	v := FromFunc(h2d, func(p sfc.Point) uint8 { return uint8(p.X * 8) })
	band, err := v.Band(128, 255)
	if err != nil {
		t.Fatal(err)
	}
	// x >= 16 qualifies: half the image.
	if band.NumVoxels() != 16*32 {
		t.Errorf("band voxels = %d, want 512", band.NumVoxels())
	}
	// Intersect with a 2D box region and extract.
	box, err := region.FromBox(h2d, region.Box{Min: sfc.Pt(10, 10, 0), Max: sfc.Pt(20, 20, 0)})
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := region.Intersect(band, box)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Extract(v, mixed)
	if err != nil {
		t.Fatal(err)
	}
	// x in 16..20, y in 10..20 -> 5*11 voxels.
	if d.NumVoxels() != 5*11 {
		t.Errorf("extracted %d voxels, want 55", d.NumVoxels())
	}
	d.ForEach(func(p sfc.Point, val uint8) bool {
		if val < 128 {
			t.Fatalf("voxel %v below band: %d", p, val)
		}
		return true
	})
}

func TestVolume2DHilbertClustering(t *testing.T) {
	// The Hilbert advantage holds in 2D too: a disc fragments into fewer
	// h-runs than z-runs.
	z2d := sfc.MustNew(sfc.ZOrder, 2, 5)
	disc, err := region.FromEllipsoid(h2d, region.Ellipsoid{CX: 16, CY: 16, CZ: 0, RX: 10, RY: 10, RZ: 1})
	if err != nil {
		t.Fatal(err)
	}
	zdisc, err := disc.Recode(z2d)
	if err != nil {
		t.Fatal(err)
	}
	if disc.NumRuns() >= zdisc.NumRuns() {
		t.Errorf("2D h-runs %d not fewer than z-runs %d", disc.NumRuns(), zdisc.NumRuns())
	}
}
