package volume

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qbism/internal/region"
	"qbism/internal/sfc"
)

var (
	h3 = sfc.MustNew(sfc.Hilbert, 3, 4)
	z3 = sfc.MustNew(sfc.ZOrder, 3, 4)
	l3 = sfc.MustNew(sfc.Scanline, 3, 4)
)

func randBytes(rng *rand.Rand, n uint64) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(h3, make([]byte, 7)); err == nil {
		t.Error("wrong-length data accepted")
	}
	v, err := New(h3, make([]byte, h3.Length()))
	if err != nil || v.NumVoxels() != h3.Length() {
		t.Errorf("New: %v, %v", v, err)
	}
}

func TestFromScanlinePreservesGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	scan := randBytes(rng, l3.Length())
	for _, c := range []sfc.Curve{h3, z3, l3} {
		v, err := FromScanline(c, scan)
		if err != nil {
			t.Fatal(err)
		}
		// Every grid point must carry the same value as the scanline array.
		for i := 0; i < 500; i++ {
			p := sfc.Pt(rng.Uint32()&15, rng.Uint32()&15, rng.Uint32()&15)
			want := scan[l3.ID(p)]
			if got := v.ValueAt(p); got != want {
				t.Fatalf("%s: ValueAt(%v) = %d, want %d", c.Kind(), p, got, want)
			}
		}
	}
	if _, err := FromScanline(h3, make([]byte, 3)); err == nil {
		t.Error("short scanline accepted")
	}
}

func TestFromScanlineCopiesInput(t *testing.T) {
	scan := make([]byte, l3.Length())
	v, err := FromScanline(l3, scan)
	if err != nil {
		t.Fatal(err)
	}
	scan[0] = 99
	if v.ValueAtID(0) == 99 {
		t.Error("FromScanline aliased the input slice")
	}
}

func TestFromFuncAndValueAt(t *testing.T) {
	v := FromFunc(h3, func(p sfc.Point) uint8 { return uint8(p.X + p.Y + p.Z) })
	if got := v.ValueAt(sfc.Pt(3, 5, 7)); got != 15 {
		t.Errorf("ValueAt = %d, want 15", got)
	}
	if got := v.ValueAtID(h3.ID(sfc.Pt(1, 2, 3))); got != 6 {
		t.Errorf("ValueAtID = %d, want 6", got)
	}
}

func TestRecode(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	scan := randBytes(rng, l3.Length())
	vh, _ := FromScanline(h3, scan)
	vz, err := vh.Recode(z3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		p := sfc.Pt(rng.Uint32()&15, rng.Uint32()&15, rng.Uint32()&15)
		if vh.ValueAt(p) != vz.ValueAt(p) {
			t.Fatalf("recode changed value at %v", p)
		}
	}
	big := sfc.MustNew(sfc.Hilbert, 3, 5)
	if _, err := vh.Recode(big); err == nil {
		t.Error("recode to different grid accepted")
	}
}

func TestHistogram(t *testing.T) {
	v := FromFunc(h3, func(p sfc.Point) uint8 {
		if p.X == 0 {
			return 200
		}
		return 10
	})
	h := v.Histogram()
	if h[200] != 16*16 || h[10] != h3.Length()-256 {
		t.Errorf("histogram: h[200]=%d h[10]=%d", h[200], h[10])
	}
}

func TestBandMatchesPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v, _ := New(h3, randBytes(rng, h3.Length()))
	band, err := v.Band(100, 149)
	if err != nil {
		t.Fatal(err)
	}
	want := region.FromPredicate(h3, func(p sfc.Point) bool {
		x := v.ValueAt(p)
		return x >= 100 && x <= 149
	})
	if !band.Equal(want) {
		t.Error("band region does not match predicate region")
	}
	if _, err := v.Band(5, 4); err == nil {
		t.Error("inverted band accepted")
	}
}

func TestUniformBandsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v, _ := New(h3, randBytes(rng, h3.Length()))
	bands, err := v.UniformBands(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(bands) != 8 {
		t.Fatalf("got %d bands, want 8", len(bands))
	}
	var total uint64
	acc := region.Empty(h3)
	for i, b := range bands {
		if b.Lo != uint8(i*32) || b.Hi != uint8(i*32+31) {
			t.Errorf("band %d bounds [%d,%d]", i, b.Lo, b.Hi)
		}
		total += b.Region.NumVoxels()
		inter, _ := region.Intersect(acc, b.Region)
		if !inter.Empty() {
			t.Errorf("band %d overlaps earlier bands", i)
		}
		acc, _ = region.Union(acc, b.Region)
	}
	if total != h3.Length() {
		t.Errorf("bands cover %d voxels, want %d", total, h3.Length())
	}
	for _, w := range []int{0, 3, 257} {
		if _, err := v.UniformBands(w); err == nil {
			t.Errorf("width %d accepted", w)
		}
	}
}

func TestExtract(t *testing.T) {
	v := FromFunc(h3, func(p sfc.Point) uint8 { return uint8(p.X) })
	r, err := region.FromBox(h3, region.Box{Min: sfc.Pt(2, 2, 2), Max: sfc.Pt(4, 4, 4)})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Extract(v, r)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumVoxels() != 27 {
		t.Fatalf("extracted %d voxels, want 27", d.NumVoxels())
	}
	d.ForEach(func(p sfc.Point, val uint8) bool {
		if val != uint8(p.X) {
			t.Fatalf("value at %v = %d, want %d", p, val, p.X)
		}
		return true
	})
	// Mismatched curves are rejected.
	rz, _ := r.Recode(z3)
	if _, err := Extract(v, rz); err == nil {
		t.Error("extract with z region from hilbert volume accepted")
	}
}

func TestDataRegionValueAtID(t *testing.T) {
	v := FromFunc(h3, func(p sfc.Point) uint8 { return uint8(p.Y * 3) })
	r, _ := region.FromBox(h3, region.Box{Min: sfc.Pt(0, 5, 0), Max: sfc.Pt(3, 6, 3)})
	d, _ := Extract(v, r)
	r.ForEachID(func(id uint64) bool {
		got, ok := d.ValueAtID(id)
		if !ok || got != v.ValueAtID(id) {
			t.Fatalf("ValueAtID(%d) = %d,%v", id, got, ok)
		}
		return true
	})
	if _, ok := d.ValueAtID(h3.Length() - 1); ok && !r.ContainsID(h3.Length()-1) {
		t.Error("ValueAtID reported outside voxel as present")
	}
}

func TestDataRegionStats(t *testing.T) {
	v := FromFunc(h3, func(p sfc.Point) uint8 { return 100 })
	d, _ := Extract(v, region.Full(h3))
	s := d.Stats()
	if s.N != h3.Length() || s.Min != 100 || s.Max != 100 || s.Mean != 100 {
		t.Errorf("stats = %+v", s)
	}
	if s.Histogram[100] != h3.Length() {
		t.Error("histogram wrong")
	}
	empty := &DataRegion{Region: region.Empty(h3)}
	if s := empty.Stats(); s.N != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestDataRegionFilter(t *testing.T) {
	v := FromFunc(h3, func(p sfc.Point) uint8 { return uint8(p.Z * 10) })
	d, _ := Extract(v, region.Full(h3))
	f, err := d.Filter(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Z in {2,3} qualifies: values 20 and 30.
	want := uint64(16 * 16 * 2)
	if f.NumVoxels() != want {
		t.Errorf("filtered %d voxels, want %d", f.NumVoxels(), want)
	}
	f.ForEach(func(p sfc.Point, val uint8) bool {
		if p.Z != 2 && p.Z != 3 {
			t.Fatalf("voxel %v should have been filtered out", p)
		}
		return true
	})
	if _, err := d.Filter(9, 3); err == nil {
		t.Error("inverted filter accepted")
	}
}

// TestExtractThenFilterEqualsBandIntersect property-tests the paper's
// mixed-query identity: extracting a structure then filtering by band
// yields the same voxels as intersecting the structure with the band
// REGION and extracting.
func TestExtractThenFilterEqualsBandIntersect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v, _ := New(h3, randBytes(rng, h3.Length()))
		sphere, err := region.FromSphere(h3, 8, 8, 8, float64(3+rng.Intn(5)))
		if err != nil {
			return false
		}
		lo := uint8(rng.Intn(200))
		hi := lo + uint8(rng.Intn(55))

		d, err := Extract(v, sphere)
		if err != nil {
			return false
		}
		viaFilter, err := d.Filter(lo, hi)
		if err != nil {
			return false
		}

		band, err := v.Band(lo, hi)
		if err != nil {
			return false
		}
		mixed, err := region.Intersect(sphere, band)
		if err != nil {
			return false
		}
		viaIntersect, err := Extract(v, mixed)
		if err != nil {
			return false
		}

		if !viaFilter.Region.Equal(viaIntersect.Region) {
			return false
		}
		if len(viaFilter.Values) != len(viaIntersect.Values) {
			return false
		}
		for i := range viaFilter.Values {
			if viaFilter.Values[i] != viaIntersect.Values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestVoxelwiseMean(t *testing.T) {
	v1 := FromFunc(h3, func(p sfc.Point) uint8 { return 10 })
	v2 := FromFunc(h3, func(p sfc.Point) uint8 { return 30 })
	r, _ := region.FromBox(h3, region.Box{Min: sfc.Pt(0, 0, 0), Max: sfc.Pt(3, 3, 3)})
	d, err := VoxelwiseMean(r, []*Volume{v1, v2})
	if err != nil {
		t.Fatal(err)
	}
	for _, val := range d.Values {
		if val != 20 {
			t.Fatalf("mean = %d, want 20", val)
		}
	}
	if _, err := VoxelwiseMean(r, nil); err == nil {
		t.Error("no volumes accepted")
	}
}

func BenchmarkExtractSphere(b *testing.B) {
	c := sfc.MustNew(sfc.Hilbert, 3, 7)
	v := FromFunc(c, func(p sfc.Point) uint8 { return uint8(p.X) })
	r, err := region.FromSphere(c, 64, 64, 64, 30)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(v, r); err != nil {
			b.Fatal(err)
		}
	}
}
