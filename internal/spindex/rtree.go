// Package spindex implements the first future direction of the paper's
// Section 7: "spatial indexing and query optimization techniques for
// efficiently locating spatial objects in large populations of studies".
//
// It provides an R-tree over 3D axis-aligned boxes (after Guttman, with
// the quadratic split of the paper's R*-tree citation [3] simplified),
// indexing REGION bounding boxes so population-scale queries — "which
// studies have a high-activity region near this location?" — can prune
// without touching every stored REGION.
package spindex

import (
	"fmt"
	"math"
	"sort"
)

// Box3 is an axis-aligned box with inclusive integer corners.
type Box3 struct {
	MinX, MinY, MinZ uint32
	MaxX, MaxY, MaxZ uint32
}

// Valid reports whether the box is non-inverted.
func (b Box3) Valid() bool {
	return b.MinX <= b.MaxX && b.MinY <= b.MaxY && b.MinZ <= b.MaxZ
}

// Volume returns the box volume in voxels.
func (b Box3) Volume() float64 {
	return float64(b.MaxX-b.MinX+1) * float64(b.MaxY-b.MinY+1) * float64(b.MaxZ-b.MinZ+1)
}

// Intersects reports whether two boxes share any voxel.
func (b Box3) Intersects(o Box3) bool {
	return b.MinX <= o.MaxX && o.MinX <= b.MaxX &&
		b.MinY <= o.MaxY && o.MinY <= b.MaxY &&
		b.MinZ <= o.MaxZ && o.MinZ <= b.MaxZ
}

// ContainsBox reports whether o lies entirely inside b.
func (b Box3) ContainsBox(o Box3) bool {
	return b.MinX <= o.MinX && o.MaxX <= b.MaxX &&
		b.MinY <= o.MinY && o.MaxY <= b.MaxY &&
		b.MinZ <= o.MinZ && o.MaxZ <= b.MaxZ
}

// union returns the smallest box covering both.
func (b Box3) union(o Box3) Box3 {
	return Box3{
		MinX: min32(b.MinX, o.MinX), MinY: min32(b.MinY, o.MinY), MinZ: min32(b.MinZ, o.MinZ),
		MaxX: max32(b.MaxX, o.MaxX), MaxY: max32(b.MaxY, o.MaxY), MaxZ: max32(b.MaxZ, o.MaxZ),
	}
}

// enlargement returns the volume increase needed to cover o.
func (b Box3) enlargement(o Box3) float64 {
	return b.union(o).Volume() - b.Volume()
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

// Entry is an indexed item: a bounding box and an opaque identifier.
type Entry struct {
	Box Box3
	ID  int64
}

const (
	maxEntries = 8
	minEntries = 3
)

type node struct {
	leaf     bool
	box      Box3
	entries  []Entry // leaf payload
	children []*node // interior payload
}

// RTree indexes Entry items for box-intersection and nearest queries.
// The zero value is not usable; call New.
type RTree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *RTree {
	return &RTree{root: &node{leaf: true}}
}

// Len returns the number of indexed entries.
func (t *RTree) Len() int { return t.size }

// Insert adds an entry.
func (t *RTree) Insert(e Entry) error {
	if !e.Box.Valid() {
		return fmt.Errorf("spindex: inverted box %+v", e.Box)
	}
	n1, n2 := t.insert(t.root, e)
	if n2 != nil {
		// Root split: grow the tree.
		t.root = &node{
			leaf:     false,
			box:      n1.box.union(n2.box),
			children: []*node{n1, n2},
		}
	}
	t.size++
	return nil
}

// insert places e under n, returning the (possibly replaced) node and a
// split sibling when n overflowed.
func (t *RTree) insert(n *node, e Entry) (*node, *node) {
	if t.size == 0 {
		n.box = e.Box
	} else if n.box.Volume() == 0 && len(n.entries) == 0 && len(n.children) == 0 {
		n.box = e.Box
	} else {
		n.box = n.box.union(e.Box)
	}
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > maxEntries {
			return splitLeaf(n)
		}
		return n, nil
	}
	// Choose subtree with least enlargement (ties: smaller volume).
	best := 0
	bestEnl := math.Inf(1)
	for i, c := range n.children {
		enl := c.box.enlargement(e.Box)
		if enl < bestEnl || (enl == bestEnl && c.box.Volume() < n.children[best].box.Volume()) {
			best, bestEnl = i, enl
		}
	}
	c1, c2 := t.insert(n.children[best], e)
	n.children[best] = c1
	if c2 != nil {
		n.children = append(n.children, c2)
		if len(n.children) > maxEntries {
			return splitInterior(n)
		}
	}
	n.recomputeBox()
	return n, nil
}

func (n *node) recomputeBox() {
	if n.leaf {
		if len(n.entries) == 0 {
			n.box = Box3{}
			return
		}
		b := n.entries[0].Box
		for _, e := range n.entries[1:] {
			b = b.union(e.Box)
		}
		n.box = b
		return
	}
	if len(n.children) == 0 {
		n.box = Box3{}
		return
	}
	b := n.children[0].box
	for _, c := range n.children[1:] {
		b = b.union(c.box)
	}
	n.box = b
}

// splitLeaf splits an overflowing leaf along the axis with the widest
// spread, distributing entries by center order (a linear-cost variant of
// Guttman's quadratic split; adequate for the populations here).
func splitLeaf(n *node) (*node, *node) {
	axis := widestAxisEntries(n.entries)
	sort.Slice(n.entries, func(i, j int) bool {
		return center(n.entries[i].Box, axis) < center(n.entries[j].Box, axis)
	})
	mid := len(n.entries) / 2
	if mid < minEntries {
		mid = minEntries
	}
	a := &node{leaf: true, entries: append([]Entry(nil), n.entries[:mid]...)}
	b := &node{leaf: true, entries: append([]Entry(nil), n.entries[mid:]...)}
	a.recomputeBox()
	b.recomputeBox()
	return a, b
}

func splitInterior(n *node) (*node, *node) {
	axis := widestAxisNodes(n.children)
	sort.Slice(n.children, func(i, j int) bool {
		return center(n.children[i].box, axis) < center(n.children[j].box, axis)
	})
	mid := len(n.children) / 2
	if mid < minEntries {
		mid = minEntries
	}
	a := &node{children: append([]*node(nil), n.children[:mid]...)}
	b := &node{children: append([]*node(nil), n.children[mid:]...)}
	a.recomputeBox()
	b.recomputeBox()
	return a, b
}

func center(b Box3, axis int) float64 {
	switch axis {
	case 0:
		return float64(b.MinX) + float64(b.MaxX-b.MinX)/2
	case 1:
		return float64(b.MinY) + float64(b.MaxY-b.MinY)/2
	default:
		return float64(b.MinZ) + float64(b.MaxZ-b.MinZ)/2
	}
}

func widestAxisEntries(es []Entry) int {
	var lo, hi [3]float64
	for i := range lo {
		lo[i], hi[i] = math.Inf(1), math.Inf(-1)
	}
	for _, e := range es {
		for axis := 0; axis < 3; axis++ {
			c := center(e.Box, axis)
			lo[axis] = math.Min(lo[axis], c)
			hi[axis] = math.Max(hi[axis], c)
		}
	}
	return argmaxSpread(lo, hi)
}

func widestAxisNodes(ns []*node) int {
	var lo, hi [3]float64
	for i := range lo {
		lo[i], hi[i] = math.Inf(1), math.Inf(-1)
	}
	for _, n := range ns {
		for axis := 0; axis < 3; axis++ {
			c := center(n.box, axis)
			lo[axis] = math.Min(lo[axis], c)
			hi[axis] = math.Max(hi[axis], c)
		}
	}
	return argmaxSpread(lo, hi)
}

func argmaxSpread(lo, hi [3]float64) int {
	best, bestSpread := 0, -1.0
	for axis := 0; axis < 3; axis++ {
		if s := hi[axis] - lo[axis]; s > bestSpread {
			best, bestSpread = axis, s
		}
	}
	return best
}

// SearchStats counts the work of one query, for index-vs-scan
// comparisons.
type SearchStats struct {
	NodesVisited int
	BoxTests     int
}

// Search returns the IDs of all entries whose boxes intersect q, in
// arbitrary order.
func (t *RTree) Search(q Box3) ([]int64, SearchStats) {
	var out []int64
	var st SearchStats
	var walk func(n *node)
	walk = func(n *node) {
		st.NodesVisited++
		if n.leaf {
			for _, e := range n.entries {
				st.BoxTests++
				if e.Box.Intersects(q) {
					out = append(out, e.ID)
				}
			}
			return
		}
		for _, c := range n.children {
			st.BoxTests++
			if c.box.Intersects(q) {
				walk(c)
			}
		}
	}
	walk(t.root)
	return out, st
}

// SearchContained returns the IDs of entries entirely inside q.
func (t *RTree) SearchContained(q Box3) []int64 {
	var res []int64
	var walk func(n *node)
	walk = func(n *node) {
		if !n.box.Intersects(q) {
			return
		}
		if n.leaf {
			for _, e := range n.entries {
				if q.ContainsBox(e.Box) {
					res = append(res, e.ID)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return res
}

// Nearest returns the k entry IDs whose box centers are closest to the
// point (x, y, z), by best-first traversal.
func (t *RTree) Nearest(x, y, z float64, k int) []int64 {
	if k <= 0 {
		return nil
	}
	type cand struct {
		dist float64
		id   int64
	}
	var cands []cand
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			for _, e := range n.entries {
				dx := center(e.Box, 0) - x
				dy := center(e.Box, 1) - y
				dz := center(e.Box, 2) - z
				cands = append(cands, cand{dist: dx*dx + dy*dy + dz*dz, id: e.ID})
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	sort.Slice(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int64, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].id
	}
	return out
}

// Height returns the tree height (1 for a single leaf).
func (t *RTree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// CheckInvariants validates the structure: every interior box covers its
// children, every leaf box covers its entries, and fanout bounds hold
// (root excepted). For tests.
func (t *RTree) CheckInvariants() error {
	var walk func(n *node, isRoot bool) error
	walk = func(n *node, isRoot bool) error {
		if n.leaf {
			if !isRoot && (len(n.entries) < minEntries || len(n.entries) > maxEntries) {
				return fmt.Errorf("spindex: leaf fanout %d out of [%d,%d]", len(n.entries), minEntries, maxEntries)
			}
			for _, e := range n.entries {
				if !n.box.ContainsBox(e.Box) {
					return fmt.Errorf("spindex: leaf box %+v misses entry %+v", n.box, e.Box)
				}
			}
			return nil
		}
		if !isRoot && (len(n.children) < 2 || len(n.children) > maxEntries) {
			return fmt.Errorf("spindex: interior fanout %d", len(n.children))
		}
		for _, c := range n.children {
			if !n.box.ContainsBox(c.box) {
				return fmt.Errorf("spindex: node box %+v misses child %+v", n.box, c.box)
			}
			if err := walk(c, false); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, true)
}
