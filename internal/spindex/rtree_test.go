package spindex

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randBox(rng *rand.Rand, side uint32) Box3 {
	x := rng.Uint32() % side
	y := rng.Uint32() % side
	z := rng.Uint32() % side
	return Box3{
		MinX: x, MinY: y, MinZ: z,
		MaxX: x + rng.Uint32()%(side/4), MaxY: y + rng.Uint32()%(side/4), MaxZ: z + rng.Uint32()%(side/4),
	}
}

func TestBox3Geometry(t *testing.T) {
	a := Box3{0, 0, 0, 9, 9, 9}
	b := Box3{5, 5, 5, 15, 15, 15}
	c := Box3{10, 10, 10, 12, 12, 12}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping boxes reported disjoint")
	}
	if a.Intersects(c) {
		t.Error("disjoint boxes reported overlapping")
	}
	if !b.ContainsBox(c) || c.ContainsBox(b) {
		t.Error("containment wrong")
	}
	if a.Volume() != 1000 {
		t.Errorf("volume = %v", a.Volume())
	}
	u := a.union(c)
	if !u.ContainsBox(a) || !u.ContainsBox(c) {
		t.Error("union does not cover operands")
	}
	if (Box3{5, 0, 0, 4, 9, 9}).Valid() {
		t.Error("inverted box valid")
	}
	if got := a.enlargement(a); got != 0 {
		t.Errorf("self-enlargement = %v", got)
	}
}

func TestInsertAndSearchExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := New()
	var all []Entry
	for i := 0; i < 500; i++ {
		e := Entry{Box: randBox(rng, 96), ID: int64(i)}
		if err := tr.Insert(e); err != nil {
			t.Fatal(err)
		}
		all = append(all, e)
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Errorf("height = %d, expected splits", tr.Height())
	}
	// Compare search results against brute force for many queries.
	for q := 0; q < 100; q++ {
		query := randBox(rng, 96)
		got, st := tr.Search(query)
		var want []int64
		for _, e := range all {
			if e.Box.Intersects(query) {
				want = append(want, e.ID)
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d ids, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: ids differ", q)
			}
		}
		if st.NodesVisited == 0 {
			t.Fatal("no nodes visited")
		}
	}
}

func TestSearchPrunes(t *testing.T) {
	// Clustered data: queries in one corner must not visit everything.
	rng := rand.New(rand.NewSource(2))
	tr := New()
	n := 2000
	for i := 0; i < n; i++ {
		base := uint32((i % 10) * 100)
		b := Box3{
			MinX: base + rng.Uint32()%40, MinY: base + rng.Uint32()%40, MinZ: base + rng.Uint32()%40,
		}
		b.MaxX, b.MaxY, b.MaxZ = b.MinX+5, b.MinY+5, b.MinZ+5
		if err := tr.Insert(Entry{Box: b, ID: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	_, st := tr.Search(Box3{MinX: 0, MinY: 0, MinZ: 0, MaxX: 50, MaxY: 50, MaxZ: 50})
	if st.BoxTests > n/2 {
		t.Errorf("index did not prune: %d box tests for %d entries", st.BoxTests, n)
	}
}

func TestSearchContained(t *testing.T) {
	tr := New()
	tr.Insert(Entry{Box: Box3{0, 0, 0, 5, 5, 5}, ID: 1})
	tr.Insert(Entry{Box: Box3{3, 3, 3, 20, 20, 20}, ID: 2})
	got := tr.SearchContained(Box3{0, 0, 0, 10, 10, 10})
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("contained = %v, want [1]", got)
	}
}

func TestNearest(t *testing.T) {
	tr := New()
	for i := uint32(0); i < 20; i++ {
		b := Box3{MinX: i * 10, MinY: 0, MinZ: 0, MaxX: i*10 + 2, MaxY: 2, MaxZ: 2}
		tr.Insert(Entry{Box: b, ID: int64(i)})
	}
	got := tr.Nearest(51, 1, 1, 3)
	if len(got) != 3 || got[0] != 5 {
		t.Errorf("nearest = %v, want leading 5", got)
	}
	if tr.Nearest(0, 0, 0, 0) != nil {
		t.Error("k=0 should return nil")
	}
	if n := len(tr.Nearest(0, 0, 0, 100)); n != 20 {
		t.Errorf("k>size returned %d", n)
	}
}

func TestInsertInvalid(t *testing.T) {
	tr := New()
	if err := tr.Insert(Entry{Box: Box3{MinX: 5, MaxX: 1, MaxY: 1, MaxZ: 1}}); err == nil {
		t.Error("inverted box accepted")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	ids, _ := tr.Search(Box3{MaxX: 10, MaxY: 10, MaxZ: 10})
	if len(ids) != 0 || tr.Len() != 0 || tr.Height() != 1 {
		t.Error("empty tree misbehaves")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestInvariantsQuick property-tests structure invariants and search
// correctness under random workloads.
func TestInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		var all []Entry
		n := rng.Intn(300) + 1
		for i := 0; i < n; i++ {
			e := Entry{Box: randBox(rng, 64), ID: int64(i)}
			if err := tr.Insert(e); err != nil {
				return false
			}
			all = append(all, e)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		q := randBox(rng, 64)
		got, _ := tr.Search(q)
		want := 0
		for _, e := range all {
			if e.Box.Intersects(q) {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	tr := New()
	for i := 0; i < 10000; i++ {
		tr.Insert(Entry{Box: randBox(rng, 128), ID: int64(i)})
	}
	q := Box3{MinX: 30, MinY: 30, MinZ: 30, MaxX: 50, MaxY: 50, MaxZ: 50}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search(q)
	}
}
