package mining

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func txn(id int64, items ...string) Transaction {
	t := Transaction{ID: id}
	for _, s := range items {
		t.Items = append(t.Items, Item(s))
	}
	return t
}

// classicBasket is the textbook market-basket example.
func classicBasket() []Transaction {
	return []Transaction{
		txn(1, "bread", "milk"),
		txn(2, "bread", "diapers", "beer", "eggs"),
		txn(3, "milk", "diapers", "beer", "cola"),
		txn(4, "bread", "milk", "diapers", "beer"),
		txn(5, "bread", "milk", "diapers", "cola"),
	}
}

func supportOf(t *testing.T, fsets []FrequentSet, items ...string) int {
	t.Helper()
	want := ItemSet{}
	for _, s := range items {
		want = append(want, Item(s))
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for _, fs := range fsets {
		if fs.Items.key() == want.key() {
			return fs.Support
		}
	}
	return 0
}

func TestFrequentItemSetsClassic(t *testing.T) {
	fsets, err := FrequentItemSets(classicBasket(), 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]int{
		"beer":          3,
		"bread":         4,
		"milk":          4,
		"diapers":       4,
		"beer,diapers":  3,
		"bread,milk":    3,
		"bread,diapers": 3,
		"milk,diapers":  3,
	}
	for spec, want := range cases {
		var items []string
		for _, s := range splitComma(spec) {
			items = append(items, s)
		}
		if got := supportOf(t, fsets, items...); got != want {
			t.Errorf("support(%s) = %d, want %d", spec, got, want)
		}
	}
	// cola appears twice: not frequent at minSupport 3.
	if supportOf(t, fsets, "cola") != 0 {
		t.Error("cola should not be frequent")
	}
	// beer+bread co-occurs only twice.
	if supportOf(t, fsets, "beer", "bread") != 0 {
		t.Error("{beer,bread} should not be frequent")
	}
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

func TestRulesClassic(t *testing.T) {
	rules, err := Rules(classicBasket(), 3, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// {beer} -> {diapers} has confidence 3/3 = 1.0.
	found := false
	for _, r := range rules {
		if len(r.Antecedent) == 1 && r.Antecedent[0] == "beer" &&
			len(r.Consequent) == 1 && r.Consequent[0] == "diapers" {
			found = true
			if r.Confidence != 1.0 {
				t.Errorf("confidence = %v, want 1.0", r.Confidence)
			}
			if r.Support != 0.6 {
				t.Errorf("support = %v, want 0.6", r.Support)
			}
			// lift = 1.0 / (4/5) = 1.25
			if r.Lift < 1.24 || r.Lift > 1.26 {
				t.Errorf("lift = %v, want 1.25", r.Lift)
			}
		}
	}
	if !found {
		t.Error("rule beer => diapers not found")
	}
	// Rules sorted by confidence descending.
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence {
			t.Error("rules not sorted by confidence")
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := FrequentItemSets(nil, 0); err == nil {
		t.Error("minSupport 0 accepted")
	}
	if _, err := Rules(nil, 1, 0); err == nil {
		t.Error("minConfidence 0 accepted")
	}
	if _, err := Rules(nil, 1, 1.5); err == nil {
		t.Error("minConfidence > 1 accepted")
	}
	rules, err := Rules(nil, 1, 0.5)
	if err != nil || rules != nil {
		t.Errorf("empty transactions: %v, %v", rules, err)
	}
}

func TestDuplicateItemsInTransaction(t *testing.T) {
	fsets, err := FrequentItemSets([]Transaction{
		txn(1, "a", "a", "b"),
		txn(2, "a", "b", "b"),
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := supportOf(t, fsets, "a"); got != 2 {
		t.Errorf("support(a) = %d, want 2 (duplicates must not double-count)", got)
	}
	if got := supportOf(t, fsets, "a", "b"); got != 2 {
		t.Errorf("support(a,b) = %d, want 2", got)
	}
}

func TestThreeItemSets(t *testing.T) {
	txns := []Transaction{
		txn(1, "x", "y", "z"),
		txn(2, "x", "y", "z"),
		txn(3, "x", "y", "z"),
		txn(4, "x", "y"),
		txn(5, "q"),
	}
	fsets, err := FrequentItemSets(txns, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := supportOf(t, fsets, "x", "y", "z"); got != 3 {
		t.Errorf("support(x,y,z) = %d, want 3", got)
	}
	// Rule {x,y} -> {z}: confidence 3/4.
	rules, err := Rules(txns, 3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rules {
		if r.Antecedent.String() == "{x, y}" && r.Consequent.String() == "{z}" {
			found = true
			if r.Confidence != 0.75 {
				t.Errorf("confidence = %v, want 0.75", r.Confidence)
			}
		}
	}
	if !found {
		t.Error("rule {x,y} => {z} not found")
	}
}

// TestAprioriAgainstBruteForce property-tests frequent-set discovery
// against exhaustive enumeration on small random datasets.
func TestAprioriAgainstBruteForce(t *testing.T) {
	universe := []Item{"a", "b", "c", "d", "e"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 1
		txns := make([]Transaction, n)
		for i := range txns {
			for _, it := range universe {
				if rng.Intn(2) == 1 {
					txns[i].Items = append(txns[i].Items, it)
				}
			}
			txns[i].ID = int64(i)
		}
		minSup := rng.Intn(n) + 1
		fsets, err := FrequentItemSets(txns, minSup)
		if err != nil {
			return false
		}
		got := make(map[string]int)
		for _, fs := range fsets {
			got[fs.Items.key()] = fs.Support
		}
		// Brute force all 2^5 - 1 subsets.
		for mask := 1; mask < 1<<len(universe); mask++ {
			var set ItemSet
			for i, it := range universe {
				if mask>>i&1 == 1 {
					set = append(set, it)
				}
			}
			support := 0
			for _, tx := range txns {
				all := true
				for _, it := range set {
					has := false
					for _, x := range tx.Items {
						if x == it {
							has = true
							break
						}
					}
					if !has {
						all = false
						break
					}
				}
				if all {
					support++
				}
			}
			wantPresent := support >= minSup
			gotSup, present := got[set.key()]
			if present != wantPresent {
				return false
			}
			if present && gotSup != support {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRuleAndSetString(t *testing.T) {
	r := Rule{Antecedent: ItemSet{"a"}, Consequent: ItemSet{"b"}, Support: 0.5, Confidence: 0.9, Lift: 1.2}
	if r.String() == "" || (ItemSet{"a", "b"}).String() != "{a, b}" {
		t.Error("String methods broken")
	}
}

func BenchmarkApriori(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	universe := []Item{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	txns := make([]Transaction, 300)
	for i := range txns {
		for _, it := range universe {
			if rng.Intn(3) != 0 {
				txns[i].Items = append(txns[i].Items, it)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FrequentItemSets(txns, 100); err != nil {
			b.Fatal(err)
		}
	}
}
