// Package mining implements the second future direction of the paper's
// Section 7: "the integration of data mining and hypothesis testing
// techniques to support investigative queries like 'find PET study
// intensity patterns that are associated with any neurological condition
// in any subpopulation'", using the association-rule framework of the
// paper's citation [1] (Agrawal, Imielinski, Swami, SIGMOD 1993).
//
// Transactions are studies; items are boolean study features such as
// "high activity in the hippocampus", "age >= 40", or "female". Apriori
// finds frequent itemsets, from which rules with sufficient confidence
// are derived.
package mining

import (
	"fmt"
	"sort"
	"strings"
)

// Item is one boolean feature, e.g. "high:hippocampus" or "sex:F".
type Item string

// Transaction is one study's feature set.
type Transaction struct {
	ID    int64
	Items []Item
}

// ItemSet is a sorted set of items.
type ItemSet []Item

// String joins the items for display.
func (s ItemSet) String() string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = string(it)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// key returns a canonical map key for the set.
func (s ItemSet) key() string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = string(it)
	}
	return strings.Join(parts, "\x00")
}

// contains reports whether s includes item x.
func (s ItemSet) contains(x Item) bool {
	for _, it := range s {
		if it == x {
			return true
		}
	}
	return false
}

// subsetOf reports whether every item of s appears in the (sorted)
// transaction items.
func (s ItemSet) subsetOf(items []Item) bool {
	i := 0
	for _, it := range items {
		if i == len(s) {
			return true
		}
		if it == s[i] {
			i++
		}
	}
	return i == len(s)
}

// FrequentSet is an itemset with its support count.
type FrequentSet struct {
	Items   ItemSet
	Support int // number of transactions containing the set
}

// Rule is an association rule X -> Y.
type Rule struct {
	Antecedent ItemSet
	Consequent ItemSet
	Support    float64 // fraction of transactions containing X ∪ Y
	Confidence float64 // support(X ∪ Y) / support(X)
	Lift       float64 // confidence / support(Y)
}

// String renders the rule.
func (r Rule) String() string {
	return fmt.Sprintf("%s => %s (sup %.2f, conf %.2f, lift %.2f)",
		r.Antecedent, r.Consequent, r.Support, r.Confidence, r.Lift)
}

// FrequentItemSets runs Apriori: all itemsets appearing in at least
// minSupport transactions, level by level with candidate pruning.
func FrequentItemSets(txns []Transaction, minSupport int) ([]FrequentSet, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("mining: minSupport must be >= 1, got %d", minSupport)
	}
	// Normalize transactions: sorted, deduplicated items.
	norm := make([][]Item, len(txns))
	for i, t := range txns {
		items := append([]Item(nil), t.Items...)
		sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		items = dedupe(items)
		norm[i] = items
	}

	// Level 1.
	counts := make(map[Item]int)
	for _, items := range norm {
		for _, it := range items {
			counts[it]++
		}
	}
	var current []ItemSet
	var out []FrequentSet
	for it, c := range counts {
		if c >= minSupport {
			current = append(current, ItemSet{it})
			out = append(out, FrequentSet{Items: ItemSet{it}, Support: c})
		}
	}
	sortSets(current)

	// Levels k > 1.
	for len(current) > 0 {
		candidates := generateCandidates(current)
		if len(candidates) == 0 {
			break
		}
		var next []ItemSet
		for _, cand := range candidates {
			support := 0
			for _, items := range norm {
				if cand.subsetOf(items) {
					support++
				}
			}
			if support >= minSupport {
				next = append(next, cand)
				out = append(out, FrequentSet{Items: cand, Support: support})
			}
		}
		sortSets(next)
		current = next
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Items) != len(out[j].Items) {
			return len(out[i].Items) < len(out[j].Items)
		}
		return out[i].Items.key() < out[j].Items.key()
	})
	return out, nil
}

func dedupe(items []Item) []Item {
	if len(items) == 0 {
		return items
	}
	out := items[:1]
	for _, it := range items[1:] {
		if it != out[len(out)-1] {
			out = append(out, it)
		}
	}
	return out
}

func sortSets(sets []ItemSet) {
	sort.Slice(sets, func(i, j int) bool { return sets[i].key() < sets[j].key() })
}

// generateCandidates joins frequent (k-1)-sets sharing a (k-2)-prefix
// and prunes candidates with an infrequent subset (the Apriori property).
func generateCandidates(frequent []ItemSet) []ItemSet {
	freq := make(map[string]bool, len(frequent))
	for _, s := range frequent {
		freq[s.key()] = true
	}
	var out []ItemSet
	seen := make(map[string]bool)
	for i := 0; i < len(frequent); i++ {
		for j := i + 1; j < len(frequent); j++ {
			a, b := frequent[i], frequent[j]
			if len(a) != len(b) || !samePrefix(a, b) {
				continue
			}
			cand := append(append(ItemSet{}, a...), b[len(b)-1])
			sort.Slice(cand, func(x, y int) bool { return cand[x] < cand[y] })
			k := cand.key()
			if seen[k] {
				continue
			}
			seen[k] = true
			if allSubsetsFrequent(cand, freq) {
				out = append(out, cand)
			}
		}
	}
	return out
}

func samePrefix(a, b ItemSet) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func allSubsetsFrequent(cand ItemSet, freq map[string]bool) bool {
	for drop := range cand {
		sub := make(ItemSet, 0, len(cand)-1)
		sub = append(sub, cand[:drop]...)
		sub = append(sub, cand[drop+1:]...)
		if !freq[sub.key()] {
			return false
		}
	}
	return true
}

// Rules derives association rules from transactions: every partition of
// each frequent itemset into antecedent => consequent meeting the
// confidence threshold. minSupport is an absolute transaction count;
// minConfidence is in (0, 1].
func Rules(txns []Transaction, minSupport int, minConfidence float64) ([]Rule, error) {
	if minConfidence <= 0 || minConfidence > 1 {
		return nil, fmt.Errorf("mining: minConfidence must be in (0,1], got %v", minConfidence)
	}
	fsets, err := FrequentItemSets(txns, minSupport)
	if err != nil {
		return nil, err
	}
	supports := make(map[string]int, len(fsets))
	for _, fs := range fsets {
		supports[fs.Items.key()] = fs.Support
	}
	n := float64(len(txns))
	if n == 0 {
		return nil, nil
	}
	var rules []Rule
	for _, fs := range fsets {
		if len(fs.Items) < 2 {
			continue
		}
		// Enumerate non-trivial antecedent subsets by bitmask.
		k := len(fs.Items)
		for mask := 1; mask < (1<<k)-1; mask++ {
			var ante, cons ItemSet
			for i := 0; i < k; i++ {
				if mask>>i&1 == 1 {
					ante = append(ante, fs.Items[i])
				} else {
					cons = append(cons, fs.Items[i])
				}
			}
			anteSup, ok := supports[ante.key()]
			if !ok || anteSup == 0 {
				continue
			}
			conf := float64(fs.Support) / float64(anteSup)
			if conf < minConfidence {
				continue
			}
			consSup := supports[cons.key()]
			lift := 0.0
			if consSup > 0 {
				lift = conf / (float64(consSup) / n)
			}
			rules = append(rules, Rule{
				Antecedent: ante,
				Consequent: cons,
				Support:    float64(fs.Support) / n,
				Confidence: conf,
				Lift:       lift,
			})
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		return rules[i].Support > rules[j].Support
	})
	return rules, nil
}
