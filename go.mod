module qbism

go 1.22
